package align

import (
	"math"
	"sort"

	"sama/internal/rdf"
)

// EditCost computes the relevance oracle of Definitions 3–4: the minimum
// cost γ(τ) of a transformation τ such that τ(φ(Q)) equals the answer
// graph, over all substitutions φ. It is an exact weighted graph edit
// distance restricted to injective node mappings, computed by branch and
// bound; both graphs must be small (queries and answers are, data graphs
// are not — never call this on a full data set).
//
// The operation weights mirror λ's: a query node whose mapped answer
// node has a different constant label costs A; an unmapped (deleted)
// query node costs A; an answer node not covered by the mapping
// (inserted) costs B; the corresponding edge operations cost C
// (mismatch/deletion) and D (insertion). Variable labels bind for free.
//
// The paper writes γ(τ) = z·Σωᵢ; we read the leading z (the op count) as
// a typo for a plain sum — with the multiplier, γ would not be additive
// over disjoint edits and Theorem 1's proof step γ(τᵢ) = λ(p, Q) could
// not hold.
func EditCost(answer *rdf.Graph, q *rdf.QueryGraph, par Params) float64 {
	n := q.NodeCount()
	m := answer.NodeCount()

	// Order query nodes by decreasing degree so that the branch and
	// bound fails fast on highly-constrained nodes.
	order := make([]rdf.NodeID, n)
	for i := range order {
		order[i] = rdf.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di := q.OutDegree(order[i]) + q.InDegree(order[i])
		dj := q.OutDegree(order[j]) + q.InDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	s := &gedSearch{
		q: q, a: answer, par: par,
		order:   order,
		mapping: make([]rdf.NodeID, n),
		used:    make([]bool, m),
		best:    math.Inf(1),
		budget:  500_000,
	}
	for i := range s.mapping {
		s.mapping[i] = rdf.InvalidNode
	}
	// Seed the bound with a greedy complete mapping so the search always
	// returns a finite cost even when the expansion budget cuts it off.
	s.greedySeed()
	s.search(0, 0)
	return s.best
}

// greedySeed builds one complete mapping — each query node to the first
// unused answer node with an equal term, else deleted — and records its
// cost as the initial upper bound.
func (s *gedSearch) greedySeed() {
	for _, qn := range s.order {
		qt := s.q.Term(qn)
		s.mapping[qn] = rdf.InvalidNode
		for an := 0; an < len(s.used); an++ {
			if s.used[an] {
				continue
			}
			// Constants want an equal term; variables take any node.
			if qt.Kind != rdf.Var && s.a.Term(rdf.NodeID(an)) != qt {
				continue
			}
			s.used[an] = true
			s.mapping[qn] = rdf.NodeID(an)
			break
		}
	}
	var nodeCost float64
	for _, qn := range s.order {
		if s.mapping[qn] == rdf.InvalidNode {
			nodeCost += s.par.A
		}
	}
	s.best = nodeCost + s.edgeCost() + s.insertionCost()
	// Reset state for the exact search.
	for i := range s.mapping {
		s.mapping[i] = rdf.InvalidNode
	}
	for i := range s.used {
		s.used[i] = false
	}
}

type gedSearch struct {
	q       *rdf.QueryGraph
	a       *rdf.Graph
	par     Params
	order   []rdf.NodeID
	mapping []rdf.NodeID // query node -> answer node or InvalidNode
	used    []bool
	best    float64
	budget  int // remaining search expansions; ≤ 0 stops exploring
}

// search extends the mapping for order[idx...], carrying the node-label
// cost accumulated so far (edge costs are evaluated at the leaves; the
// node cost is a valid lower bound, enabling pruning). The expansion
// budget bounds the worst case; the greedy seed guarantees a finite
// answer regardless.
func (s *gedSearch) search(idx int, nodeCost float64) {
	if nodeCost >= s.best || s.budget <= 0 {
		return
	}
	s.budget--
	if idx == len(s.order) {
		total := nodeCost + s.edgeCost() + s.insertionCost()
		if total < s.best {
			s.best = total
		}
		return
	}
	qn := s.order[idx]
	qt := s.q.Term(qn)
	// Zero-cost candidates first (equal term, or any node for a
	// variable): the search reaches good leaves early, tightening the
	// bound before the expensive mismatch branches.
	for pass := 0; pass < 2; pass++ {
		for an := 0; an < len(s.used); an++ {
			if s.used[an] {
				continue
			}
			at := s.a.Term(rdf.NodeID(an))
			exact := qt.Kind == rdf.Var || qt == at
			if (pass == 0) != exact {
				continue
			}
			var c float64
			if !exact {
				c = s.par.A // constant label mismatch
			}
			s.used[an] = true
			s.mapping[qn] = rdf.NodeID(an)
			s.search(idx+1, nodeCost+c)
			s.used[an] = false
			s.mapping[qn] = rdf.InvalidNode
			if s.budget <= 0 {
				return
			}
		}
	}
	// Or delete the query node.
	s.search(idx+1, nodeCost+s.par.A)
}

// edgeCost prices every query edge under the current complete mapping:
// an edge whose endpoints are both mapped is matched against the answer
// edges between those endpoints (free on a label match or variable,
// C otherwise); an edge with an unmapped endpoint is deleted (C).
func (s *gedSearch) edgeCost() float64 {
	var cost float64
	s.q.Edges(func(e rdf.Edge) bool {
		from, to := s.mapping[e.From], s.mapping[e.To]
		if from == rdf.InvalidNode || to == rdf.InvalidNode {
			cost += s.par.C
			return true
		}
		bestEdge := s.par.C // deletion if nothing connects the endpoints
		for _, aeid := range s.a.Out(from) {
			ae := s.a.Edge(aeid)
			if ae.To != to {
				continue
			}
			if e.Label.Kind == rdf.Var || ae.Label == e.Label {
				bestEdge = 0
				break
			}
			bestEdge = minf(bestEdge, s.par.C) // label mismatch
		}
		cost += bestEdge
		return true
	})
	return cost
}

// insertionCost prices the answer elements not covered by the mapping:
// every unused answer node costs B and every answer edge not matched by
// some query edge costs D.
func (s *gedSearch) insertionCost() float64 {
	var cost float64
	for an, used := range s.used {
		if !used {
			cost += s.par.B
			_ = an
		}
	}
	// Count answer edges covered by query edges under the mapping.
	covered := make(map[rdf.EdgeID]bool)
	s.q.Edges(func(e rdf.Edge) bool {
		from, to := s.mapping[e.From], s.mapping[e.To]
		if from == rdf.InvalidNode || to == rdf.InvalidNode {
			return true
		}
		for _, aeid := range s.a.Out(from) {
			ae := s.a.Edge(aeid)
			if ae.To == to && (e.Label.Kind == rdf.Var || ae.Label == e.Label) && !covered[aeid] {
				covered[aeid] = true
				break
			}
		}
		return true
	})
	cost += float64(s.a.EdgeCount()-len(covered)) * s.par.D
	return cost
}

// MoreRelevant reports whether answer a1 is more relevant than a2 for Q
// under Definition 4: γ(τ1) < γ(τ2).
func MoreRelevant(a1, a2 *rdf.Graph, q *rdf.QueryGraph, par Params) bool {
	return EditCost(a1, q, par) < EditCost(a2, q, par)
}
