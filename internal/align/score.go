package align

import (
	"sama/internal/paths"
	"sama/internal/rdf"
)

// PairedPath associates one query path q with the data path p chosen for
// it by an answer, i.e. p = τ(φ(q)) for the alignment of Definition 6.
type PairedPath struct {
	Query paths.Path
	Data  paths.Path
	// Alignment caches the alignment of Data against Query; Quality
	// computes it with the greedy aligner when nil.
	Alignment *Alignment
}

// Quality computes Λ(a, Q) = Σ_{q∈Q} λ(p_q, q): the total alignment
// quality of an answer whose chosen paths are given by pairs.
func Quality(pairs []PairedPath, par Params) float64 {
	var sum float64
	for i := range pairs {
		if pairs[i].Alignment == nil {
			pairs[i].Alignment = NewGreedy(par).Align(pairs[i].Data, pairs[i].Query)
		}
		sum += pairs[i].Alignment.Cost
	}
	return sum
}

// Psi computes ψ(qi, qj, pi, pj): the conformity of the pair of data
// paths (pi, pj) to the pair of query paths (qi, qj) they align with.
// With χ the node-intersection function:
//
//	ψ = e·|χ(qi,qj)| / |χ(pi,pj)|  when |χ(pi,pj)| > 0
//	ψ = e·|χ(qi,qj)|               when |χ(pi,pj)| = 0
//
// A pair of query paths that share no node contributes 0 either way, so
// only intersecting query pairs matter. Lower is better: an answer whose
// paths intersect as richly as the query's contributes e per pair, and
// the contribution grows as the answer's paths lose their common nodes.
func Psi(qi, qj, pi, pj paths.Path, par Params) float64 {
	chiQ := len(paths.CommonNodes(qi, qj))
	if chiQ == 0 {
		return 0
	}
	chiP := len(paths.CommonNodes(pi, pj))
	if chiP > 0 {
		return par.E * float64(chiQ) / float64(chiP)
	}
	return par.E * float64(chiQ)
}

// PsiDegree returns the conformity degree |χ(pi,pj)| / |χ(qi,qj)| — the
// reciprocal view of ψ used by the paper's Figure 4 to label forest
// edges (1 means the answer pair shares exactly the nodes the query pair
// does; the (p7, p1) example is 0.5). Pairs of query paths with no
// common node have degree 1 by convention (nothing to conform to).
func PsiDegree(qi, qj, pi, pj paths.Path) float64 {
	chiQ := len(paths.CommonNodes(qi, qj))
	if chiQ == 0 {
		return 1
	}
	chiP := len(paths.CommonNodes(pi, pj))
	return float64(chiP) / float64(chiQ)
}

// ChiAligned counts the common nodes of (pi, pj) that *correspond* to
// the common nodes of (qi, qj) under the substitutions recovered by the
// alignments: a shared query variable corresponds when both alignments
// bind it to the same constant; a shared query constant corresponds
// when both data paths contain it.
//
// This is the χ the paper's Figure 4 labels actually realise: for
// χ(q2,q1) = {?v2, HC}, the pair (p10, p1) shares both B1432 (= φ(?v2)
// on both sides) and HC, giving degree 1, while (p7, p1) shares only HC
// because φ binds ?v2 to B0045 on one side and B1432 on the other —
// degree 0.5, the paper's dashed edge. Counting raw label overlap would
// let incidentally-shared nodes (e.g. a class node both paths end at)
// mask such binding disagreements.
func ChiAligned(qi, qj paths.Path, si, sj rdf.Substitution, pi, pj paths.Path) int {
	count := 0
	for _, x := range paths.CommonNodes(qi, qj) {
		if x.Kind == rdf.Var {
			vi, oki := si[x.Value]
			vj, okj := sj[x.Value]
			if oki && okj && vi == vj {
				count++
			}
			continue
		}
		if pi.ContainsNode(x) && pj.ContainsNode(x) {
			count++
		}
	}
	return count
}

// PsiFromChi is ψ evaluated from precomputed χ values:
//
//	ψ = e·chiQ / chiA  when chiA > 0
//	ψ = e·chiQ         when chiA = 0
//
// with chiQ = |χ(qi,qj)| and chiA the realised intersection count
// (ChiAligned for the alignment-aware χ, |χ(pi,pj)| for the raw one).
// Callers that precompile the pairwise structure (the search phase's
// binding-vector scorer) evaluate ψ through this primitive so the
// scoring semantics — including the exact floating-point expression,
// which the cross-engine equivalence suite pins bit-for-bit — stay in
// one place. PsiAligned is PsiFromChi over ChiAligned.
func PsiFromChi(chiQ, chiA int, par Params) float64 {
	if chiQ == 0 {
		return 0
	}
	if chiA > 0 {
		return par.E * float64(chiQ) / float64(chiA)
	}
	return par.E * float64(chiQ)
}

// PsiDegreeFromChi is the conformity degree chiA / chiQ from
// precomputed χ values, with the chiQ = 0 ⇒ 1 convention of PsiDegree.
func PsiDegreeFromChi(chiQ, chiA int) float64 {
	if chiQ == 0 {
		return 1
	}
	return float64(chiA) / float64(chiQ)
}

// PsiAligned is ψ computed with the alignment-aware χ of ChiAligned:
//
//	ψ = e·|χ(qi,qj)| / χa  when χa > 0
//	ψ = e·|χ(qi,qj)|       when χa = 0
//
// with χa = ChiAligned(...). This is the conformity the engine uses.
func PsiAligned(qi, qj paths.Path, si, sj rdf.Substitution, pi, pj paths.Path, par Params) float64 {
	chiQ := len(paths.CommonNodes(qi, qj))
	if chiQ == 0 {
		return 0
	}
	return PsiFromChi(chiQ, ChiAligned(qi, qj, si, sj, pi, pj), par)
}

// PsiDegreeAligned is the conformity degree χa / |χ(qi,qj)| under the
// alignment-aware χ (the Figure 4 edge labels). Query pairs with no
// common node have degree 1 by convention.
func PsiDegreeAligned(qi, qj paths.Path, si, sj rdf.Substitution, pi, pj paths.Path) float64 {
	chiQ := len(paths.CommonNodes(qi, qj))
	if chiQ == 0 {
		return 1
	}
	return PsiDegreeFromChi(chiQ, ChiAligned(qi, qj, si, sj, pi, pj))
}

// Conformity computes Ψ(a, Q) = Σ_{qi,qj∈Q} ψ(qi, qj, pi, pj) over the
// unordered pairs of distinct query paths.
func Conformity(pairs []PairedPath, par Params) float64 {
	var sum float64
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			sum += Psi(pairs[i].Query, pairs[j].Query, pairs[i].Data, pairs[j].Data, par)
		}
	}
	return sum
}

// Score computes score(a, Q) = Λ(a, Q) + Ψ(a, Q) for an answer given as
// its query-path/data-path pairing. Lower scores rank answers as more
// relevant (Theorem 1).
func Score(pairs []PairedPath, par Params) float64 {
	return Quality(pairs, par) + Conformity(pairs, par)
}
