package align

import (
	"math"
	"testing"

	"sama/internal/paths"
	"sama/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }
func vr(s string) rdf.Term  { return rdf.NewVar(s) }

// mkPath builds a path from an alternating label list n1, e1, n2, e2, …
// Labels starting with '?' become variables; labels starting with '"'
// become literals; everything else is an IRI.
func mkPath(labels ...string) paths.Path {
	conv := func(s string) rdf.Term {
		switch {
		case len(s) > 0 && s[0] == '?':
			return vr(s[1:])
		case len(s) > 0 && s[0] == '"':
			return lit(s[1:])
		default:
			return iri(s)
		}
	}
	var p paths.Path
	for i, l := range labels {
		if i%2 == 0 {
			p.Nodes = append(p.Nodes, conv(l))
		} else {
			p.Edges = append(p.Edges, conv(l))
		}
	}
	return p
}

// The paper's query paths (§4.3 / §5) and data paths from Figure 3.
var (
	q1 = mkPath("CB", "sponsor", "?v1", "aTo", "?v2", "subject", `"HC`)
	q2 = mkPath("?v3", "sponsor", "?v2", "subject", `"HC`)
	q3 = mkPath("?v3", "gender", `"Male`)

	p1  = mkPath("CB", "sponsor", "A0056", "aTo", "B1432", "subject", `"HC`)
	p2  = mkPath("JR", "sponsor", "A1589", "aTo", "B0532", "subject", `"HC`)
	p7  = mkPath("JR", "sponsor", "B0045", "subject", `"HC`)
	p10 = mkPath("PD", "sponsor", "B1432", "subject", `"HC`)
	p17 = mkPath("JR", "gender", `"Male`)
	p20 = mkPath("PD", "gender", `"Male`)
)

var paperParams = DefaultParams // a=1, b=0.5, c=2, d=1, e=1

func alignersUnderTest() map[string]Aligner {
	return map[string]Aligner{
		"greedy":  NewGreedy(paperParams),
		"optimal": NewOptimal(paperParams),
	}
}

// TestPaperExampleLambda reproduces every λ value worked out in §4.3 and
// in the Figure 3 clusters, for both aligners.
func TestPaperExampleLambda(t *testing.T) {
	cases := []struct {
		name string
		p, q paths.Path
		want float64
	}{
		// §4.3: "In the former case λ(p, q1) = 0".
		{"p1-vs-q1", p1, q1, 0},
		// §4.3: "λ(p, q2) = (0 + b) + (0 + d) = 1.5".
		{"p1-vs-q2", p1, q2, 1.5},
		// §4.3: "λ(p′, q1) = (a + 0) + (0 + 0) = 1" (CB vs JR mismatch).
		{"p2-vs-q1", p2, q1, 1},
		// Figure 3, cl2: length-3 paths align perfectly with q2.
		{"p7-vs-q2", p7, q2, 0},
		{"p10-vs-q2", p10, q2, 0},
		// Figure 3, cl2: length-4 paths score 1.5 against q2.
		{"p2-vs-q2", p2, q2, 1.5},
		// Figure 3, cl3: gender paths align perfectly with q3.
		{"p17-vs-q3", p17, q3, 0},
		{"p20-vs-q3", p20, q3, 0},
	}
	for name, al := range alignersUnderTest() {
		for _, c := range cases {
			got := al.Align(c.p, c.q)
			if got.Cost != c.want {
				t.Errorf("%s: λ(%s, %s) = %v, want %v\nops: %v",
					name, c.name, c.q, got.Cost, c.want, got.Ops)
			}
		}
	}
}

func TestAlignmentCounters(t *testing.T) {
	// p1 vs q2: one node and one edge inserted into q (the aTo step).
	al := NewGreedy(paperParams).Align(p1, q2)
	if al.NodeInsertions != 1 || al.EdgeInsertions != 1 {
		t.Errorf("insertions = %d nodes %d edges, want 1/1", al.NodeInsertions, al.EdgeInsertions)
	}
	if al.NodeMismatches != 0 || al.EdgeMismatches != 0 {
		t.Errorf("mismatches = %d/%d, want 0/0", al.NodeMismatches, al.EdgeMismatches)
	}
	if al.Perfect() {
		t.Error("1.5-cost alignment reported Perfect")
	}
	// p2 vs q1: a single node mismatch (CB vs JR).
	al = NewGreedy(paperParams).Align(p2, q1)
	if al.NodeMismatches != 1 {
		t.Errorf("NodeMismatches = %d, want 1", al.NodeMismatches)
	}
	// Exact case.
	al = NewGreedy(paperParams).Align(p1, q1)
	if !al.Perfect() {
		t.Errorf("p1 vs q1 should be perfect, got %+v", al)
	}
}

func TestAlignmentSubstitution(t *testing.T) {
	al := NewGreedy(paperParams).Align(p1, q1)
	want := map[string]rdf.Term{"v1": iri("A0056"), "v2": iri("B1432")}
	for name, term := range want {
		if got, ok := al.Subst[name]; !ok || got != term {
			t.Errorf("φ(?%s) = %v, want %v", name, got, term)
		}
	}
	// Gender path binds ?v3.
	al = NewGreedy(paperParams).Align(p20, q3)
	if got := al.Subst["v3"]; got != iri("PD") {
		t.Errorf("φ(?v3) = %v, want PD", got)
	}
}

func TestAlignmentVariableEdge(t *testing.T) {
	// The paper's Q2 (Figure 1c) has a variable edge label ?e1.
	q := mkPath("?v2", "?e1", `"HC`)
	p := mkPath("B1432", "subject", `"HC`)
	for name, al := range alignersUnderTest() {
		got := al.Align(p, q)
		if got.Cost != 0 {
			t.Errorf("%s: variable edge alignment cost = %v, want 0", name, got.Cost)
		}
	}
}

func TestAlignmentSinkMismatch(t *testing.T) {
	p := mkPath("a", "p", `"X`)
	q := mkPath("a", "p", `"Y`)
	for name, al := range alignersUnderTest() {
		got := al.Align(p, q)
		if got.Cost != paperParams.A {
			t.Errorf("%s: sink mismatch cost = %v, want %v", name, got.Cost, paperParams.A)
		}
	}
}

func TestAlignmentQueryLongerThanData(t *testing.T) {
	// q asks for a longer chain than p provides: the missing pair is a
	// deletion, priced A + C.
	q := mkPath("?v1", "p", "?v2", "q", `"HC`)
	p := mkPath("x", "q", `"HC`)
	for name, al := range alignersUnderTest() {
		got := al.Align(p, q)
		want := paperParams.A + paperParams.C
		if got.Cost != want {
			t.Errorf("%s: deletion cost = %v, want %v (ops %v)", name, got.Cost, want, got.Ops)
		}
	}
}

func TestAlignmentEmptyPaths(t *testing.T) {
	empty := paths.Path{}
	p := mkPath("a", "p", "b")
	for name, al := range alignersUnderTest() {
		if got := al.Align(empty, p); got.Cost != paperParams.A*2+paperParams.C {
			t.Errorf("%s: empty p cost = %v", name, got.Cost)
		}
		if got := al.Align(p, empty); got.Cost != paperParams.B*2+paperParams.D {
			t.Errorf("%s: empty q cost = %v", name, got.Cost)
		}
	}
}

func TestAlignmentConflictingRebind(t *testing.T) {
	// ?x occurs twice in q but aligns with two different constants: the
	// second occurrence is a free labeling modification (ω(×) = 0), so
	// the alignment is still cost 0 and φ keeps the sink-side binding.
	q := mkPath("?x", "p", "?x")
	p := mkPath("a", "p", "b")
	al := NewGreedy(paperParams).Align(p, q)
	if al.Cost != 0 {
		t.Errorf("conflicting rebind cost = %v, want 0", al.Cost)
	}
	if got := al.Subst["x"]; got != iri("b") {
		t.Errorf("φ(?x) = %v, want b (sink-side binding wins)", got)
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	// Structured cases plus the paper's paths.
	cases := [][2]paths.Path{
		{p1, q1}, {p1, q2}, {p2, q1}, {p7, q2}, {p10, q1}, {p17, q3},
		{mkPath("a", "p", "b", "q", "c", "r", "d"), mkPath("a", "p", "c", "r", "d")},
		{mkPath("a", "p", "b"), mkPath("x", "y", "z", "w", "a", "p", "b")},
		{mkPath("n1", "e", "n2", "e", "n3", "e", "n4"), mkPath("?a", "e", "?b")},
	}
	g := NewGreedy(paperParams)
	o := NewOptimal(paperParams)
	for i, c := range cases {
		gc := g.Align(c[0], c[1]).Cost
		oc := o.Align(c[0], c[1]).Cost
		if oc > gc {
			t.Errorf("case %d: optimal %v > greedy %v", i, oc, gc)
		}
	}
}

func TestGreedyVsOptimalRandom(t *testing.T) {
	// Property over pseudo-random small paths: optimal ≤ greedy, both
	// non-negative, and both zero on identical variable-free paths.
	labels := []string{"a", "b", "c", "p", "q", "?x", "?y"}
	gen := func(seed, length int) paths.Path {
		var p paths.Path
		state := uint32(seed*2654435761 + 12345)
		next := func() int {
			state = state*1664525 + 1013904223
			return int(state >> 16)
		}
		for i := 0; i < length; i++ {
			l := labels[next()%len(labels)]
			if i%2 == 0 {
				p.Nodes = append(p.Nodes, termFor(l))
			} else {
				p.Edges = append(p.Edges, termFor(l))
			}
		}
		if len(p.Nodes) == len(p.Edges) {
			p.Nodes = append(p.Nodes, iri("sink"))
		}
		return p
	}
	g := NewGreedy(paperParams)
	o := NewOptimal(paperParams)
	for seed := 0; seed < 200; seed++ {
		p := gen(seed, 3+seed%9*2)
		q := gen(seed*7+1, 3+(seed/2)%7*2)
		gc := g.Align(p, q).Cost
		oc := o.Align(p, q).Cost
		if gc < 0 || oc < 0 {
			t.Fatalf("seed %d: negative cost g=%v o=%v", seed, gc, oc)
		}
		if oc > gc+1e-9 {
			t.Errorf("seed %d: optimal %v > greedy %v\np=%s\nq=%s", seed, oc, gc, p, q)
		}
	}
}

func termFor(l string) rdf.Term {
	if l[0] == '?' {
		return vr(l[1:])
	}
	return iri(l)
}

func TestInteriorAnchor(t *testing.T) {
	// The data path continues past the query's endpoint: anchoring at
	// the interior B0532 makes the suffix (subject, HC) free context —
	// the answer gathered more labels than Q, it did not diverge.
	q := mkPath("?x", "sponsor", "B0532")
	p := mkPath("MariaVance", "sponsor", "B0532", "subject", `"HC`)
	for name, al := range alignersUnderTest() {
		got := al.Align(p, q)
		if got.Cost != 0 {
			t.Errorf("%s: interior anchor cost = %v, want 0\nops: %v", name, got.Cost, got.Ops)
		}
		if got.Subst["x"] != iri("MariaVance") {
			t.Errorf("%s: φ(?x) = %v, want MariaVance", name, got.Subst["x"])
		}
		if got.ContextNodes != 1 || got.ContextEdges != 1 {
			t.Errorf("%s: context = %d/%d, want 1/1", name, got.ContextNodes, got.ContextEdges)
		}
		if got.NodeInsertions != 0 || got.EdgeInsertions != 0 {
			t.Errorf("%s: insertions = %d/%d, want 0/0 (context is not insertion)",
				name, got.NodeInsertions, got.EdgeInsertions)
		}
		if !got.Perfect() {
			t.Errorf("%s: context-only alignment should be Perfect", name)
		}
	}
	// With the full chain queried, the plain sink-anchored scan is 0.
	qFull := mkPath("?x", "sponsor", "B0532", "subject", `"HC`)
	if got := Lambda(p, qFull, paperParams); got != 0 {
		t.Errorf("full-path alignment = %v, want 0", got)
	}
	// Variable sink: the anchor lands after the last occurrence of the
	// query's final edge label, so ?y binds B0532 and the rest is
	// context.
	qVar := mkPath("?x", "sponsor", "?y")
	for name, al := range alignersUnderTest() {
		got := al.Align(p, qVar)
		if got.Cost != 0 {
			t.Errorf("%s: variable-sink cost = %v, want 0", name, got.Cost)
		}
		if got.Subst["y"] != iri("B0532") {
			t.Errorf("%s: φ(?y) = %v, want B0532 (not the path sink)", name, got.Subst["y"])
		}
	}
}

func TestPrefixContextIsFree(t *testing.T) {
	// A query matching the tail of a longer chain: the leading hops are
	// free context, and the bindings come from the matched window.
	q := mkPath("?x", "worksFor", "?d", "subOrganizationOf", "?u")
	p := mkPath("Pub1", "publicationAuthor", "Prof3", "worksFor", "Dept0", "subOrganizationOf", "Univ0")
	for name, al := range alignersUnderTest() {
		got := al.Align(p, q)
		if got.Cost != 0 {
			t.Errorf("%s: tail-match cost = %v, want 0\nops: %v", name, got.Cost, got.Ops)
		}
		want := map[string]string{"x": "Prof3", "d": "Dept0", "u": "Univ0"}
		for v, val := range want {
			if got.Subst[v] != iri(val) {
				t.Errorf("%s: φ(?%s) = %v, want %s", name, v, got.Subst[v], val)
			}
		}
		if got.ContextNodes != 1 || got.ContextEdges != 1 {
			t.Errorf("%s: context = %d/%d, want 1/1", name, got.ContextNodes, got.ContextEdges)
		}
	}
	// Mid-path insertions still cost b + d: the paper's worked example.
	if got := Lambda(p1, q2, paperParams); got != 1.5 {
		t.Errorf("mid insertion = %v, want 1.5 (Equation 1 price)", got)
	}
}

func TestSelfAlignmentIsZero(t *testing.T) {
	for _, p := range []paths.Path{p1, p2, p7, p10, p17} {
		for name, al := range alignersUnderTest() {
			if got := al.Align(p, p).Cost; got != 0 {
				t.Errorf("%s: self-alignment of %s = %v, want 0", name, p, got)
			}
		}
	}
}

func TestPsiPaperExamples(t *testing.T) {
	// χ(q2,q1) = {?v2, HC}. χ(p10,p1) = {B1432, HC} → degree 1, ψ = e.
	if got := PsiDegree(q2, q1, p10, p1); got != 1 {
		t.Errorf("PsiDegree(q2,q1,p10,p1) = %v, want 1", got)
	}
	if got := Psi(q2, q1, p10, p1, paperParams); got != 1 {
		t.Errorf("Psi(q2,q1,p10,p1) = %v, want 1", got)
	}
	// χ(p7,p1) = {HC} → degree 0.5 (Figure 4's dashed edge), ψ = 2.
	if got := PsiDegree(q2, q1, p7, p1); got != 0.5 {
		t.Errorf("PsiDegree(q2,q1,p7,p1) = %v, want 0.5", got)
	}
	if got := Psi(q2, q1, p7, p1, paperParams); got != 2 {
		t.Errorf("Psi(q2,q1,p7,p1) = %v, want 2", got)
	}
	// Disjoint query paths contribute 0 regardless of the data paths.
	if got := Psi(q1, q3, p1, p17, paperParams); got != 0 {
		t.Errorf("Psi on disjoint query paths = %v, want 0", got)
	}
	if got := PsiDegree(q1, q3, p1, p17); got != 1 {
		t.Errorf("PsiDegree on disjoint query paths = %v, want 1", got)
	}
}

func TestPsiAlignedPaperExamples(t *testing.T) {
	// Recover the substitutions exactly as the engine does.
	g := NewGreedy(paperParams)
	a1 := g.Align(p1, q1)   // φ: v1←A0056, v2←B1432
	a10 := g.Align(p10, q2) // φ: v3←PD, v2←B1432
	a7 := g.Align(p7, q2)   // φ: v3←JR, v2←B0045

	// χ(q2,q1) = {?v2, HC}. (p10, p1): ?v2 agrees (B1432) and HC is in
	// both → χa = 2, ψ = 1, degree = 1 (the solid edge of Figure 4).
	if got := PsiAligned(q2, q1, a10.Subst, a1.Subst, p10, p1, paperParams); got != 1 {
		t.Errorf("PsiAligned(p10,p1) = %v, want 1", got)
	}
	if got := PsiDegreeAligned(q2, q1, a10.Subst, a1.Subst, p10, p1); got != 1 {
		t.Errorf("PsiDegreeAligned(p10,p1) = %v, want 1", got)
	}
	// (p7, p1): ?v2 disagrees (B0045 vs B1432), only HC corresponds →
	// χa = 1, ψ = 2, degree = 0.5 (the dashed edge of Figure 4).
	if got := PsiAligned(q2, q1, a7.Subst, a1.Subst, p7, p1, paperParams); got != 2 {
		t.Errorf("PsiAligned(p7,p1) = %v, want 2", got)
	}
	if got := PsiDegreeAligned(q2, q1, a7.Subst, a1.Subst, p7, p1); got != 0.5 {
		t.Errorf("PsiDegreeAligned(p7,p1) = %v, want 0.5", got)
	}
}

func TestChiAlignedIgnoresIncidentalSharing(t *testing.T) {
	// Two query paths sharing only the variable ?s; the data paths
	// share a class-like constant node that does not correspond to any
	// shared query node — it must not count.
	qa := mkPath("?s", "ta", "?c", "type", "GradCourse")
	qb := mkPath("?s", "takes", "?c2", "type", "GradCourse")
	pa := mkPath("Stu1", "ta", "CourseX", "type", "GradCourse")
	pb := mkPath("Stu2", "takes", "CourseX", "type", "GradCourse")
	g := NewGreedy(paperParams)
	aa := g.Align(pa, qa)
	ab := g.Align(pb, qb)
	// χ(qa,qb) = {?s, GradCourse}: ?s disagrees (Stu1/Stu2), GradCourse
	// is genuinely shared → χa = 1 of 2.
	if got := ChiAligned(qa, qb, aa.Subst, ab.Subst, pa, pb); got != 1 {
		t.Errorf("ChiAligned = %d, want 1", got)
	}
	// Consistent students → both correspond.
	pc := mkPath("Stu1", "takes", "CourseY", "type", "GradCourse")
	ac := g.Align(pc, qb)
	if got := ChiAligned(qa, qb, aa.Subst, ac.Subst, pa, pc); got != 2 {
		t.Errorf("consistent ChiAligned = %d, want 2", got)
	}
}

func TestPsiNoCommonDataNodes(t *testing.T) {
	// |χ(pi,pj)| = 0 → ψ = e·|χ(qi,qj)|.
	pa := mkPath("x", "sponsor", "y", "subject", `"Other`)
	if got := Psi(q2, q1, pa, p1, paperParams); got != 2 {
		t.Errorf("Psi with disjoint data paths = %v, want e·|χ(q)| = 2", got)
	}
}

func TestScoreFirstSolution(t *testing.T) {
	// The paper's first solution combines p1, p10, p20: Λ = 0 and every
	// pair conforms perfectly, so score = Ψ = ψ(q1,q2) + ψ(q2,q3) = 2e.
	pairs := []PairedPath{
		{Query: q1, Data: p1},
		{Query: q2, Data: p10},
		{Query: q3, Data: p20},
	}
	lam := Quality(pairs, paperParams)
	if lam != 0 {
		t.Errorf("Λ = %v, want 0", lam)
	}
	psi := Conformity(pairs, paperParams)
	if psi != 2 {
		t.Errorf("Ψ = %v, want 2", psi)
	}
	if got := Score(pairs, paperParams); got != 2 {
		t.Errorf("score = %v, want 2", got)
	}
}

func TestScoreWorseCombination(t *testing.T) {
	// Swapping p10 for p7 (JR sponsors B0045, not B1432) breaks the
	// ?v2 intersection with q1 and the ?v3 one with q3’s PD… check the
	// combination with p17 (JR gender Male) instead: conformity between
	// q2/q3 holds via JR but q1/q2 degrades.
	good := Score([]PairedPath{
		{Query: q1, Data: p1}, {Query: q2, Data: p10}, {Query: q3, Data: p20},
	}, paperParams)
	worse := Score([]PairedPath{
		{Query: q1, Data: p1}, {Query: q2, Data: p7}, {Query: q3, Data: p17},
	}, paperParams)
	if !(good < worse) {
		t.Errorf("good %v should beat worse %v", good, worse)
	}
}

func TestQualityCachesAlignments(t *testing.T) {
	pairs := []PairedPath{{Query: q1, Data: p1}}
	Quality(pairs, paperParams)
	if pairs[0].Alignment == nil {
		t.Fatal("Quality did not cache the alignment")
	}
	if !pairs[0].Alignment.Perfect() {
		t.Error("cached alignment should be perfect")
	}
}

func TestParamsValid(t *testing.T) {
	if !DefaultParams.Valid() {
		t.Error("DefaultParams invalid")
	}
	if (Params{A: -1}).Valid() {
		t.Error("negative weight accepted")
	}
}

func TestOpKindString(t *testing.T) {
	kinds := []OpKind{OpMatch, OpBind, OpNodeMismatch, OpEdgeMismatch,
		OpNodeInsert, OpEdgeInsert, OpNodeDelete, OpEdgeDelete, OpKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty name for %d", uint8(k))
		}
	}
}

func TestLambdaHelpers(t *testing.T) {
	if Lambda(p1, q2, paperParams) != 1.5 {
		t.Error("Lambda helper wrong")
	}
	if LambdaOptimal(p1, q2, paperParams) != 1.5 {
		t.Error("LambdaOptimal helper wrong")
	}
}

func TestAlignLinearTimeShape(t *testing.T) {
	// Sanity check for the O(|p|+|q|) claim: doubling the input roughly
	// doubles the number of recorded ops, and the aligner terminates on
	// long paths quickly. (Wall-clock asserts are flaky; op counts are
	// deterministic.)
	long := func(n int) paths.Path {
		var p paths.Path
		for i := 0; i < n; i++ {
			p.Nodes = append(p.Nodes, iri("n"))
			if i < n-1 {
				p.Edges = append(p.Edges, iri("e"))
			}
		}
		return p
	}
	g := NewGreedy(paperParams)
	ops1 := len(g.Align(long(100), long(50)).Ops)
	ops2 := len(g.Align(long(200), long(100)).Ops)
	if ops2 >= 3*ops1 {
		t.Errorf("op growth not linear: %d → %d", ops1, ops2)
	}
}

func TestScoreMonotoneInMismatches(t *testing.T) {
	// Adding one more mismatching element to an answer path must not
	// decrease its λ (the heart of Theorem 1 at path granularity).
	base := mkPath("CB", "sponsor", "X", "aTo", "Y", "subject", `"HC`)
	worse := mkPath("ZZ", "sponsor", "X", "aTo", "Y", "subject", `"HC`)
	lb := Lambda(base, q1, paperParams)
	lw := Lambda(worse, q1, paperParams)
	if lw < lb {
		t.Errorf("extra mismatch lowered λ: %v < %v", lw, lb)
	}
	if math.IsNaN(lb) || math.IsNaN(lw) {
		t.Error("NaN cost")
	}
}
