package align

import (
	"sama/internal/paths"
	"sama/internal/rdf"
)

// pair is one (edge, node) step of a path read backwards from the sink.
// The path l1-e1-l2-…-e(k-1)-lk is viewed as the sink node lk followed by
// the backward pairs (e(k-1), l(k-1)), …, (e1, l1). Aligning two paths
// anchored at their sinks then reduces to aligning two pair sequences,
// which keeps node↔node and edge↔edge pairings by construction.
type pair struct {
	edge, node rdf.Term
}

// backwardPairs returns the (edge, node) pairs of p from the sink toward
// the source.
func backwardPairs(p paths.Path) []pair {
	return backwardPairsInto(nil, p)
}

// backwardPairsInto is backwardPairs appending into dst's capacity, so
// a long-lived aligner can reuse one scratch slice across calls.
func backwardPairsInto(dst []pair, p paths.Path) []pair {
	k := len(p.Nodes)
	for t := k - 2; t >= 0; t-- {
		dst = append(dst, pair{edge: p.Edges[t], node: p.Nodes[t]})
	}
	return dst
}

func pairCost(pp, qp pair, par Params) float64 {
	return edgeStepCost(pp.edge, qp.edge, par) + nodeStepCost(pp.node, qp.node, par)
}

// GreedyAligner is the production aligner: a single backward scan with
// one-pair lookahead. Its running time is O(|p| + |q|), matching the
// complexity claim of §4.3. The scan starts at the sinks (“proceeding
// with a scan contrary to the direction of the edges”) and resolves each
// local disagreement by preferring, in order: a zero-cost pairing, an
// insertion/deletion that re-synchronises the scan on the next pair, and
// finally whichever of substitution or indel is cheaper under Params.
// A GreedyAligner carries reusable pair scratch across Align calls, so
// it is NOT safe for concurrent use — the engine's worker pool gives
// each worker its own instance.
type GreedyAligner struct {
	Params Params
	// pp, qp are backward-pair scratch reused across Align calls. The
	// window search reuses suffixes of pp for the trimmed anchors, so
	// one Align computes each path's pairs exactly once instead of once
	// per anchor.
	pp, qp []pair
}

// NewGreedy returns a GreedyAligner with the given parameters.
func NewGreedy(par Params) *GreedyAligner { return &GreedyAligner{Params: par} }

// Align implements Aligner. The query may match any *window* of the
// data path: the sink-to-sink scan of §4.3 is tried first, then every
// interior anchor (query sink aligned at position t of p, the suffix
// past t free context — the path merely gathered more labels). The
// cheapest anchoring wins, so a query ending mid-path binds the nodes
// the window actually covers instead of whatever the path ends at.
// Each anchored scan is O(|p|+|q|) and p is bounded by the indexing
// MaxLength, keeping Align linear in practice.
func (g *GreedyAligner) Align(p, q paths.Path) *Alignment {
	if len(p.Nodes) == 0 || len(q.Nodes) == 0 {
		return g.alignAnchored(p, q)
	}
	g.pp = backwardPairsInto(g.pp[:0], p)
	g.qp = backwardPairsInto(g.qp[:0], q)
	// Trimming p at anchor t keeps its first t+1 nodes, whose backward
	// pairs are exactly the last t entries of the full pair sequence —
	// each anchor reuses the one scratch fill above.
	core := func(t int) *Alignment {
		return g.alignPairs(p.Nodes[t], q.Sink(), g.pp[len(g.pp)-t:], g.qp)
	}
	costAt := func(t int) float64 {
		return g.costPairs(p.Nodes[t], q.Sink(), g.pp[len(g.pp)-t:], g.qp)
	}
	return alignBestWindowCosted(core, costAt, p, q, g.Params)
}

// alignAnchored is the sink-to-sink backward scan (allocating variant;
// the hot path goes through Align's scratch-reusing closures).
func (g *GreedyAligner) alignAnchored(p, q paths.Path) *Alignment {
	par := g.Params
	if len(p.Nodes) == 0 || len(q.Nodes) == 0 {
		// Degenerate: treat every element of the non-empty side as an
		// insertion (p side) or deletion (q side).
		al := &Alignment{Subst: rdf.Substitution{}}
		for _, n := range p.Nodes {
			al.record(OpNodeInsert, rdf.Term{}, n)
		}
		for _, e := range p.Edges {
			al.record(OpEdgeInsert, rdf.Term{}, e)
		}
		for _, n := range q.Nodes {
			al.record(OpNodeDelete, n, rdf.Term{})
		}
		for _, e := range q.Edges {
			al.record(OpEdgeDelete, e, rdf.Term{})
		}
		al.addCost(par)
		return al
	}
	return g.alignPairs(p.Sink(), q.Sink(), backwardPairs(p), backwardPairs(q))
}

// alignPairs runs the §4.3 backward scan over precomputed pair
// sequences, anchored at the given sink labels.
func (g *GreedyAligner) alignPairs(pSink, qSink rdf.Term, pp, qp []pair) *Alignment {
	par := g.Params
	// Worst case the scan emits one op per element of each side plus the
	// sink anchor; sizing Ops up front keeps the winner materialisation
	// out of append's regrowth path.
	al := &Alignment{
		Ops:   make([]Op, 0, 2*(len(pp)+len(qp))+1),
		Subst: rdf.Substitution{},
	}

	// Anchor at the sinks.
	al.record(nodeStep(pSink, qSink), qSink, pSink)

	i, j := 0, 0
	indel := par.B + par.D // cost of inserting a (edge, node) pair into q
	drop := par.A + par.C  // cost of deleting a (edge, node) pair from q
	for i < len(pp) || j < len(qp) {
		switch {
		case i >= len(pp):
			// p exhausted: the remaining query pairs are unmet.
			al.record(OpEdgeDelete, qp[j].edge, rdf.Term{})
			al.record(OpNodeDelete, qp[j].node, rdf.Term{})
			j++
		case j >= len(qp):
			// q exhausted: the remaining data pairs lie before the
			// query's source — free context, not insertions.
			al.record(OpEdgeContext, rdf.Term{}, pp[i].edge)
			al.record(OpNodeContext, rdf.Term{}, pp[i].node)
			i++
		default:
			sub := pairCost(pp[i], qp[j], par)
			if sub == 0 {
				al.record(edgeStep(pp[i].edge, qp[j].edge), qp[j].edge, pp[i].edge)
				al.record(nodeStep(pp[i].node, qp[j].node), qp[j].node, pp[i].node)
				i++
				j++
				continue
			}
			// One-pair lookahead: compare the two-step cost of an indel
			// plus its follow-up pairing against substituting here (the
			// aTo-B1432 insertion of the paper's worked example wins
			// exactly when the lookahead re-synchronises the scan more
			// cheaply than the local mismatch).
			surplus := (len(pp) - i) - (len(qp) - j)
			insertWins := false
			if surplus > 0 && i+1 < len(pp) {
				insertWins = indel+pairCost(pp[i+1], qp[j], par) < sub
			}
			dropWins := false
			if surplus < 0 && j+1 < len(qp) {
				dropWins = drop+pairCost(pp[i], qp[j+1], par) < sub
			}
			switch {
			case insertWins:
				al.record(OpEdgeInsert, rdf.Term{}, pp[i].edge)
				al.record(OpNodeInsert, rdf.Term{}, pp[i].node)
				i++
			case dropWins:
				al.record(OpEdgeDelete, qp[j].edge, rdf.Term{})
				al.record(OpNodeDelete, qp[j].node, rdf.Term{})
				j++
			default:
				al.record(edgeStep(pp[i].edge, qp[j].edge), qp[j].edge, pp[i].edge)
				al.record(nodeStep(pp[i].node, qp[j].node), qp[j].node, pp[i].node)
				i++
				j++
			}
		}
	}
	al.addCost(par)
	return al
}

// costPairs prices the §4.3 backward scan without materialising it: the
// branch structure mirrors alignPairs decision for decision, but only
// the λ contribution accumulates — no op log, no substitution map, no
// allocation at all. The window sweep prices every anchor with this and
// materialises a full Alignment only for the winners, which is where
// the aligner's time used to go (an Ops slice and a Subst map per
// discarded anchor).
func (g *GreedyAligner) costPairs(pSink, qSink rdf.Term, pp, qp []pair) float64 {
	par := g.Params
	cost := nodeStepCost(pSink, qSink, par)
	i, j := 0, 0
	indel := par.B + par.D
	drop := par.A + par.C
	for i < len(pp) || j < len(qp) {
		switch {
		case i >= len(pp):
			cost += drop // the remaining query pair is unmet
			j++
		case j >= len(qp):
			i++ // surplus before the query's source: free context
		default:
			sub := pairCost(pp[i], qp[j], par)
			if sub == 0 {
				i++
				j++
				continue
			}
			surplus := (len(pp) - i) - (len(qp) - j)
			insertWins := false
			if surplus > 0 && i+1 < len(pp) {
				insertWins = indel+pairCost(pp[i+1], qp[j], par) < sub
			}
			dropWins := false
			if surplus < 0 && j+1 < len(qp) {
				dropWins = drop+pairCost(pp[i], qp[j+1], par) < sub
			}
			switch {
			case insertWins:
				cost += indel
				i++
			case dropWins:
				cost += drop
				j++
			default:
				cost += sub
				i++
				j++
			}
		}
	}
	return cost
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// alignBestWindow tries the sink-to-sink anchoring and every interior
// anchor (query sink at position t of p; p's suffix past t is free
// context) and returns the cheapest alignment. core(t) aligns q
// against p trimmed to its first t+1 nodes (t = len(p.Nodes)-1 is the
// untrimmed path) — an index contract rather than a trimmed paths.Path
// so the greedy aligner can reuse precomputed pair scratch per anchor.
// Ties prefer the anchor closest to p's sink, so the paper's examples
// keep their canonical alignments. Anchors at t = 0 are skipped for
// multi-edge queries: a one-node window cannot carry a structural
// match.
func alignBestWindow(core func(t int) *Alignment, p, q paths.Path, par Params) *Alignment {
	return alignBestWindowCosted(core, func(t int) float64 { return core(t).Cost }, p, q, par)
}

// alignBestWindowCosted is alignBestWindow split into a pricing sweep
// and a materialisation step: costAt(t) must return exactly core(t).Cost
// without the allocation (context past the anchor is free, so the
// trimmed scan's cost is already final). The sweep walks the same
// anchors in the same order as the one-pass loop did — sinkward first,
// stopping at the first free alignment — and collects the anchors that
// tie the winning price; only those are materialised, and ties resolve
// by window affinity with the earlier anchor winning equal scores,
// reproducing the one-pass selection decision for decision.
func alignBestWindowCosted(core func(t int) *Alignment, costAt func(t int) float64, p, q paths.Path, par Params) *Alignment {
	last := len(p.Nodes) - 1
	if len(q.Nodes) == 0 || len(p.Nodes) < 2 {
		return core(last)
	}
	minT := 1
	if len(q.Nodes) == 1 {
		minT = 0
	}
	bestT := last
	bestCost := costAt(last)
	var ties []int
	for t := last - 1; t >= minT && bestCost != 0; t-- {
		c := costAt(t)
		if c > bestCost {
			continue
		}
		if c == bestCost {
			ties = append(ties, t)
			continue
		}
		bestCost, bestT, ties = c, t, ties[:0]
	}
	best := core(bestT)
	if len(ties) > 0 {
		// Equal price: prefer the window whose mismatches are
		// token-related to the query (teaches ↔ teacherOf beats
		// teaches ↔ type).
		bestAffinity := windowAffinity(best)
		for _, t := range ties {
			alt := core(t)
			if a := windowAffinity(alt); a > bestAffinity {
				best, bestT, bestAffinity = alt, t, a
			}
		}
	}
	if bestT < last {
		// The suffix p[bestT+1:] (and its edges) lies past the query's
		// endpoint — free context.
		for e := bestT; e < len(p.Edges); e++ {
			best.record(OpEdgeContext, rdf.Term{}, p.Edges[e])
		}
		for n := bestT + 1; n < len(p.Nodes); n++ {
			best.record(OpNodeContext, rdf.Term{}, p.Nodes[n])
		}
		best.addCost(par)
	}
	return best
}

// Lambda computes λ(p, q) with the greedy aligner: the quality of the
// alignment of data path p against query path q (Equation 1).
func Lambda(p, q paths.Path, par Params) float64 {
	return NewGreedy(par).Align(p, q).Cost
}
