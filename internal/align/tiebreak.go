package align

import (
	"strings"

	"sama/internal/rdf"
	"sama/internal/textindex"
)

// stem reduces an inflected token to a crude stem: enough to let
// “teaches” meet “teacher” and “attends” meet “attend” when breaking
// ties between equally-priced alignments. Deliberately lighter than a
// real stemmer — it only ever strips one common suffix.
func stem(tok string) string {
	for _, suf := range []string{"ing", "es", "ed", "er", "s"} {
		if len(tok) > len(suf)+2 && strings.HasSuffix(tok, suf) {
			return tok[:len(tok)-len(suf)]
		}
	}
	return tok
}

// tokenRelated reports whether two labels share a stemmed token.
func tokenRelated(a, b rdf.Term) bool {
	at := map[string]bool{}
	for _, tok := range textindex.Tokenize(a.Label()) {
		at[stem(tok)] = true
	}
	for _, tok := range textindex.Tokenize(b.Label()) {
		if at[stem(tok)] {
			return true
		}
	}
	return false
}

// windowAffinity scores how semantically close an alignment's mismatched
// elements are to their query counterparts: one point per mismatch whose
// labels share a stemmed token. Equal-cost window anchorings are ranked
// by this — aligning “teaches” against “teacherOf” (related) beats
// aligning it against “type” (unrelated) even though λ prices both as
// one edge mismatch.
func windowAffinity(al *Alignment) int {
	score := 0
	for _, op := range al.Ops {
		switch op.Kind {
		case OpEdgeMismatch, OpNodeMismatch:
			if tokenRelated(op.Q, op.P) {
				score++
			}
		}
	}
	return score
}
