package align

import (
	"fmt"

	"sama/internal/paths"
	"sama/internal/rdf"
)

// OpKind is the kind of one basic update operation recovered by an
// alignment (the ε of Definition 4).
type OpKind uint8

const (
	// OpMatch aligns two equal constants; cost 0.
	OpMatch OpKind = iota
	// OpBind substitutes a variable with a constant (part of φ); cost 0.
	OpBind
	// OpNodeMismatch aligns two different constant node labels; counted
	// in n⁻N, cost A.
	OpNodeMismatch
	// OpEdgeMismatch aligns two different constant edge labels; counted
	// in n⁻E, cost C.
	OpEdgeMismatch
	// OpNodeInsert inserts a node of p into q; counted in nʸN, cost B.
	OpNodeInsert
	// OpEdgeInsert inserts an edge of p into q; counted in nʸE, cost D.
	OpEdgeInsert
	// OpNodeDelete drops a node of q that has no counterpart in p;
	// priced like a mismatch (cost A): the answer lacks a concept the
	// query asked for.
	OpNodeDelete
	// OpEdgeDelete drops an edge of q with no counterpart in p; cost C.
	OpEdgeDelete
	// OpNodeContext marks a node of p outside the matched window — the
	// surplus before the query's source or after its sink. Context is
	// free: the paper fixes ω(×) = 0 “because we do not want to
	// penalize the case where the answer gathers more labels than Q”,
	// and a data path that merely continues past the query's endpoints
	// has gathered labels, not diverged. Mid-path insertions (the
	// aTo-B1432 case) keep their Equation 1 price.
	OpNodeContext
	// OpEdgeContext marks an edge of p outside the matched window; free.
	OpEdgeContext
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpMatch:
		return "match"
	case OpBind:
		return "bind"
	case OpNodeMismatch:
		return "node-mismatch"
	case OpEdgeMismatch:
		return "edge-mismatch"
	case OpNodeInsert:
		return "node-insert"
	case OpEdgeInsert:
		return "edge-insert"
	case OpNodeDelete:
		return "node-delete"
	case OpEdgeDelete:
		return "edge-delete"
	case OpNodeContext:
		return "node-context"
	case OpEdgeContext:
		return "edge-context"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one recovered operation: the query-path element it touches (Q)
// and the data-path element involved (P), either of which may be the
// zero Term for insertions/deletions.
type Op struct {
	Kind OpKind
	Q, P rdf.Term
}

// Alignment is the result of aligning a data path p against a query path
// q: the τ∘φ of Definition 6, with its cost broken down by operation
// class. Cost is exactly λ(p, q) under the Params used.
type Alignment struct {
	// Cost is λ(p, q) = A·NodeMismatches + B·NodeInsertions +
	// C·EdgeMismatches + D·EdgeInsertions + A·NodeDeletions +
	// C·EdgeDeletions.
	Cost float64
	// NodeMismatches is n⁻N of Equation 1.
	NodeMismatches int
	// NodeInsertions is nʸN of Equation 1.
	NodeInsertions int
	// EdgeMismatches is n⁻E of Equation 1.
	EdgeMismatches int
	// EdgeInsertions is nʸE of Equation 1.
	EdgeInsertions int
	// NodeDeletions and EdgeDeletions count query elements with no
	// counterpart in the data path (q longer than p).
	NodeDeletions int
	EdgeDeletions int
	// ContextNodes and ContextEdges count data elements outside the
	// matched window (before the query's source or past its sink).
	// They are free (see OpNodeContext) and excluded from nʸ.
	ContextNodes int
	ContextEdges int
	// Subst is the recovered substitution φ: variable bindings chosen by
	// the alignment. When a variable occurs at several positions with
	// conflicting values, the binding closest to the sink wins; the other
	// occurrences are free labeling modifications (ω(×) = 0, as fixed in
	// the proof of Theorem 1), so they do not contribute to Cost.
	Subst rdf.Substitution
	// Ops is the recovered operation sequence, ordered from the sink
	// backwards (the scan direction of §4.3).
	Ops []Op
}

func (al *Alignment) addCost(p Params) {
	al.Cost = p.A*float64(al.NodeMismatches) +
		p.B*float64(al.NodeInsertions) +
		p.C*float64(al.EdgeMismatches) +
		p.D*float64(al.EdgeInsertions) +
		p.A*float64(al.NodeDeletions) +
		p.C*float64(al.EdgeDeletions)
}

// Perfect reports whether the alignment needed no transformation at all:
// p is an exact match of q up to variable substitution.
func (al *Alignment) Perfect() bool {
	return al.NodeMismatches == 0 && al.NodeInsertions == 0 &&
		al.EdgeMismatches == 0 && al.EdgeInsertions == 0 &&
		al.NodeDeletions == 0 && al.EdgeDeletions == 0
}

// record applies one operation to the counters, the op log and, for
// binds, the substitution.
func (al *Alignment) record(kind OpKind, q, p rdf.Term) {
	switch kind {
	case OpBind:
		if q.Kind == rdf.Var {
			if _, ok := al.Subst[q.Value]; !ok {
				al.Subst[q.Value] = p
			}
		}
	case OpNodeMismatch:
		al.NodeMismatches++
	case OpEdgeMismatch:
		al.EdgeMismatches++
	case OpNodeInsert:
		al.NodeInsertions++
	case OpEdgeInsert:
		al.EdgeInsertions++
	case OpNodeDelete:
		al.NodeDeletions++
	case OpEdgeDelete:
		al.EdgeDeletions++
	case OpNodeContext:
		al.ContextNodes++
	case OpEdgeContext:
		al.ContextEdges++
	}
	al.Ops = append(al.Ops, Op{Kind: kind, Q: q, P: p})
}

// nodeStep classifies the pairing of a data node label against a query
// node label: OpBind when the query side is a variable, OpMatch on equal
// labels, OpNodeMismatch otherwise. Edge variables (legal in query
// graphs) also bind.
func nodeStep(pn, qn rdf.Term) OpKind {
	switch {
	case qn.Kind == rdf.Var:
		return OpBind
	case pn == qn:
		return OpMatch
	default:
		return OpNodeMismatch
	}
}

func edgeStep(pe, qe rdf.Term) OpKind {
	switch {
	case qe.Kind == rdf.Var:
		return OpBind
	case pe == qe:
		return OpMatch
	default:
		return OpEdgeMismatch
	}
}

// nodeStepCost returns the λ contribution of pairing the two node labels.
func nodeStepCost(pn, qn rdf.Term, par Params) float64 {
	if nodeStep(pn, qn) == OpNodeMismatch {
		return par.A
	}
	return 0
}

func edgeStepCost(pe, qe rdf.Term, par Params) float64 {
	if edgeStep(pe, qe) == OpEdgeMismatch {
		return par.C
	}
	return 0
}

// Aligner aligns a data path against a query path under some Params.
type Aligner interface {
	// Align returns the alignment of data path p against query path q.
	Align(p, q paths.Path) *Alignment
}
