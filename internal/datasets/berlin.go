package datasets

import "sama/internal/rdf"

// Berlin generates graphs shaped like the Berlin SPARQL Benchmark
// (Bizer, Schultz, IJSWIS 2009): an e-commerce schema of producers,
// products with features, vendors, offers and reviews by reviewers,
// with BSBM's characteristic ratios (≈10 offers and ≈5 reviews per
// product family).
type Berlin struct{}

// BerlinNamespace is the IRI prefix of every generated resource.
const BerlinNamespace = "http://berlin.example.org/"

// Name implements Generator.
func (Berlin) Name() string { return "Berlin" }

// triplesPerProduct approximates the yield of one product with its
// offers and reviews.
const triplesPerProduct = 38

// Generate implements Generator.
func (Berlin) Generate(targetTriples int, seed int64) *rdf.Graph {
	b := newBuilder(BerlinNamespace, seed)
	products := targetTriples / triplesPerProduct
	if products < 1 {
		products = 1
	}
	producers := products/20 + 1
	vendors := products/25 + 2
	reviewers := products/2 + 2

	var (
		productClass  = b.iri("class/Product")
		producerClass = b.iri("class/Producer")
		vendorClass   = b.iri("class/Vendor")
		offerClass    = b.iri("class/Offer")
		reviewClass   = b.iri("class/Review")
		personClass   = b.iri("class/Person")
		featureClass  = b.iri("class/ProductFeature")

		producerPred = b.iri("vocab/producer")
		featurePred  = b.iri("vocab/productFeature")
		labelPred    = b.iri("vocab/label")
		offerFor     = b.iri("vocab/product")
		vendorPred   = b.iri("vocab/vendor")
		pricePred    = b.iri("vocab/price")
		reviewFor    = b.iri("vocab/reviewFor")
		reviewer     = b.iri("vocab/reviewer")
		ratingPred   = b.iri("vocab/rating")
		countryPred  = b.iri("vocab/country")
	)
	countries := []string{"DE", "US", "GB", "JP", "FR", "CN"}
	adjectives := []string{"durable", "compact", "premium", "budget",
		"wireless", "ergonomic", "industrial", "portable"}
	nouns := []string{"drill", "keyboard", "monitor", "battery",
		"amplifier", "sensor", "router", "printer"}

	// Features: a fixed vocabulary pool.
	features := make([]rdf.Term, 40)
	for i := range features {
		features[i] = b.iri("feature/Feature%d", i)
		b.add(features[i], typePred, featureClass)
	}
	// Producers.
	prod := make([]rdf.Term, producers)
	for i := range prod {
		prod[i] = b.iri("producer/Producer%d", i)
		b.add(prod[i], typePred, producerClass)
		b.add(prod[i], countryPred, rdf.NewLiteral(pick(b, countries)))
	}
	// Vendors.
	vend := make([]rdf.Term, vendors)
	for i := range vend {
		vend[i] = b.iri("vendor/Vendor%d", i)
		b.add(vend[i], typePred, vendorClass)
		b.add(vend[i], countryPred, rdf.NewLiteral(pick(b, countries)))
	}
	// Reviewers.
	rev := make([]rdf.Term, reviewers)
	for i := range rev {
		rev[i] = b.iri("person/Reviewer%d", i)
		b.add(rev[i], typePred, personClass)
	}
	// Products with offers and reviews.
	offerSeq, reviewSeq := 0, 0
	for i := 0; i < products; i++ {
		p := b.iri("product/Product%d", i)
		b.add(p, typePred, productClass)
		b.add(p, producerPred, pick(b, prod))
		b.add(p, labelPred, rdf.NewLiteral(pick(b, adjectives)+" "+pick(b, nouns)))
		for f := 0; f < b.rangeInt(3, 6); f++ {
			b.add(p, featurePred, pick(b, features))
		}
		for o := 0; o < b.rangeInt(4, 8); o++ {
			offer := b.iri("offer/Offer%d", offerSeq)
			offerSeq++
			b.add(offer, typePred, offerClass)
			b.add(offer, offerFor, p)
			b.add(offer, vendorPred, pick(b, vend))
			b.add(offer, pricePred, rdf.NewTypedLiteral(
				itoa(b.rangeInt(5, 2000)), "http://www.w3.org/2001/XMLSchema#integer"))
		}
		for r := 0; r < b.rangeInt(2, 5); r++ {
			review := b.iri("review/Review%d", reviewSeq)
			reviewSeq++
			b.add(review, typePred, reviewClass)
			b.add(review, reviewFor, p)
			b.add(review, reviewer, pick(b, rev))
			b.add(review, ratingPred, rdf.NewTypedLiteral(
				itoa(b.rangeInt(1, 10)), "http://www.w3.org/2001/XMLSchema#integer"))
		}
	}
	return b.g
}
