package datasets

import (
	"strings"
	"testing"

	"sama/internal/rdf"
)

func TestAllAndByName(t *testing.T) {
	gens := All()
	if len(gens) != 4 {
		t.Fatalf("generators = %d, want 4", len(gens))
	}
	for _, g := range gens {
		got, err := ByName(g.Name())
		if err != nil {
			t.Errorf("ByName(%s): %v", g.Name(), err)
		}
		if got.Name() != g.Name() {
			t.Errorf("ByName(%s) returned %s", g.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, gen := range All() {
		t.Run(gen.Name(), func(t *testing.T) {
			a := gen.Generate(2000, 42)
			b := gen.Generate(2000, 42)
			if a.EdgeCount() != b.EdgeCount() || a.NodeCount() != b.NodeCount() {
				t.Fatalf("same seed differs: %v vs %v", a, b)
			}
			ta, tb := a.Triples(), b.Triples()
			for i := range ta {
				if ta[i] != tb[i] {
					t.Fatalf("triple %d differs: %v vs %v", i, ta[i], tb[i])
				}
			}
			c := gen.Generate(2000, 43)
			same := c.EdgeCount() == a.EdgeCount()
			if same {
				tc := c.Triples()
				identical := true
				for i := range ta {
					if ta[i] != tc[i] {
						identical = false
						break
					}
				}
				if identical {
					t.Error("different seeds produced identical graphs")
				}
			}
		})
	}
}

func TestGeneratorsHitTargetSize(t *testing.T) {
	for _, gen := range All() {
		for _, target := range []int{1000, 10000} {
			g := gen.Generate(target, 7)
			got := g.EdgeCount()
			if got < target/2 || got > target*2 {
				t.Errorf("%s(%d) produced %d triples (outside ±2x)", gen.Name(), target, got)
			}
		}
	}
}

func TestGeneratorsValidTriples(t *testing.T) {
	for _, gen := range All() {
		g := gen.Generate(1500, 1)
		for i, tr := range g.Triples() {
			if err := tr.Valid(); err != nil {
				t.Fatalf("%s triple %d invalid: %v", gen.Name(), i, err)
			}
		}
	}
}

func TestGeneratorsHaveSourcesAndSinks(t *testing.T) {
	// The path index needs roots and sinks; every generated graph must
	// provide path roots (sources, or hubs as fallback) and sinks.
	for _, gen := range All() {
		g := gen.Generate(2000, 3)
		if len(g.PathRoots()) == 0 {
			t.Errorf("%s graph has no path roots", gen.Name())
		}
		if len(g.Sinks()) == 0 {
			t.Errorf("%s graph has no sinks", gen.Name())
		}
	}
}

func TestLUBMSchemaShape(t *testing.T) {
	g := LUBM{}.Generate(3000, 11)
	pred := func(local string) rdf.Term { return rdf.NewIRI(LUBMNamespace + "vocab/" + local) }
	counts := map[string]int{}
	g.Edges(func(e rdf.Edge) bool {
		counts[e.Label.Value] = counts[e.Label.Value] + 1
		return true
	})
	for _, p := range []string{"takesCourse", "worksFor", "advisor", "teacherOf", "publicationAuthor", "memberOf"} {
		if counts[pred(p).Value] == 0 {
			t.Errorf("LUBM lacks %s edges", p)
		}
	}
	// Students outnumber faculty: takesCourse should dominate teacherOf.
	if counts[pred("takesCourse").Value] <= counts[pred("teacherOf").Value] {
		t.Error("takesCourse should dominate teacherOf")
	}
	// Types present.
	if n := g.NodeByTerm(rdf.NewIRI(LUBMNamespace + "class/FullProfessor")); n == rdf.InvalidNode {
		t.Error("FullProfessor class missing")
	}
}

func TestGovTrackSchemaShape(t *testing.T) {
	g := GovTrack{}.Generate(3000, 5)
	// The Figure 1 chain must exist: someone sponsors an amendment,
	// which amends a bill with a subject.
	sponsor := rdf.NewIRI(GovTrackNamespace + "vocab/sponsor")
	aTo := rdf.NewIRI(GovTrackNamespace + "vocab/aTo")
	subject := rdf.NewIRI(GovTrackNamespace + "vocab/subject")
	var hasChain bool
	g.Edges(func(e rdf.Edge) bool {
		if e.Label != sponsor {
			return true
		}
		for _, eid2 := range g.Out(e.To) {
			e2 := g.Edge(eid2)
			if e2.Label != aTo {
				continue
			}
			for _, eid3 := range g.Out(e2.To) {
				if g.Edge(eid3).Label == subject {
					hasChain = true
					return false
				}
			}
		}
		return true
	})
	if !hasChain {
		t.Error("GovTrack lacks the sponsor→aTo→subject chain of Figure 1")
	}
	// Genders are literals.
	gender := rdf.NewIRI(GovTrackNamespace + "vocab/gender")
	g.Edges(func(e rdf.Edge) bool {
		if e.Label == gender {
			if o := g.Term(e.To); o.Kind != rdf.Literal {
				t.Errorf("gender object %v not a literal", o)
			}
		}
		return true
	})
}

func TestBerlinSchemaShape(t *testing.T) {
	g := Berlin{}.Generate(3000, 9)
	offerFor := rdf.NewIRI(BerlinNamespace + "vocab/product")
	reviewFor := rdf.NewIRI(BerlinNamespace + "vocab/reviewFor")
	offers, reviews := 0, 0
	g.Edges(func(e rdf.Edge) bool {
		switch e.Label {
		case offerFor:
			offers++
		case reviewFor:
			reviews++
		}
		return true
	})
	if offers == 0 || reviews == 0 {
		t.Fatalf("offers = %d, reviews = %d; want both > 0", offers, reviews)
	}
	if offers <= reviews {
		t.Error("BSBM profile has more offers than reviews")
	}
}

func TestPBlogPowerLaw(t *testing.T) {
	g := PBlog{}.Generate(6000, 13)
	linksTo := rdf.NewIRI(PBlogNamespace + "vocab/linksTo")
	indeg := map[rdf.NodeID]int{}
	g.Edges(func(e rdf.Edge) bool {
		if e.Label == linksTo {
			indeg[e.To]++
		}
		return true
	})
	if len(indeg) == 0 {
		t.Fatal("no links generated")
	}
	max, total := 0, 0
	for _, d := range indeg {
		total += d
		if d > max {
			max = d
		}
	}
	mean := float64(total) / float64(len(indeg))
	// Preferential attachment: the hub's in-degree far exceeds the mean.
	if float64(max) < 5*mean {
		t.Errorf("max in-degree %d not heavy-tailed (mean %.1f)", max, mean)
	}
}

func TestNamespacesDistinct(t *testing.T) {
	ns := []string{LUBMNamespace, GovTrackNamespace, BerlinNamespace, PBlogNamespace}
	for i := range ns {
		for j := i + 1; j < len(ns); j++ {
			if strings.HasPrefix(ns[i], ns[j]) || strings.HasPrefix(ns[j], ns[i]) {
				t.Errorf("namespaces overlap: %s vs %s", ns[i], ns[j])
			}
		}
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 7: "7", 42: "42", 1234: "1234"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q", n, got)
		}
	}
}
