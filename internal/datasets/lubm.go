package datasets

import "sama/internal/rdf"

// LUBM generates graphs shaped like the Lehigh University Benchmark
// (Guo, Pan, Heflin, J. Web Sem. 2005): universities containing
// departments, faculty of three ranks, graduate and undergraduate
// students, courses and publications, connected by the standard LUBM
// predicate vocabulary. Entity ratios follow the original generator's
// profile (≈15 departments per university, ≈10 faculty per rank per
// department, undergraduates outnumbering graduates ≈3:1, students
// taking 2–4 courses).
type LUBM struct{}

// LUBMNamespace is the IRI prefix of every generated LUBM resource.
const LUBMNamespace = "http://lubm.example.org/"

// Name implements Generator.
func (LUBM) Name() string { return "LUBM" }

// triplesPerDepartment is the approximate triple yield of one generated
// department, used to size the graph to a target.
const triplesPerDepartment = 980

// Generate implements Generator.
func (LUBM) Generate(targetTriples int, seed int64) *rdf.Graph {
	b := newBuilder(LUBMNamespace, seed)
	departments := targetTriples / triplesPerDepartment
	if departments < 1 {
		departments = 1
	}
	deptsPerUniv := 15
	universities := (departments + deptsPerUniv - 1) / deptsPerUniv

	var (
		university       = b.iri("class/University")
		department       = b.iri("class/Department")
		fullProfessor    = b.iri("class/FullProfessor")
		associateProf    = b.iri("class/AssociateProfessor")
		assistantProf    = b.iri("class/AssistantProfessor")
		lecturerClass    = b.iri("class/Lecturer")
		gradStudent      = b.iri("class/GraduateStudent")
		underStudent     = b.iri("class/UndergraduateStudent")
		courseClass      = b.iri("class/Course")
		gradCourseClass  = b.iri("class/GraduateCourse")
		publicationClass = b.iri("class/Publication")
		researchGroup    = b.iri("class/ResearchGroup")

		subOrganizationOf = b.iri("vocab/subOrganizationOf")
		worksFor          = b.iri("vocab/worksFor")
		memberOf          = b.iri("vocab/memberOf")
		advisor           = b.iri("vocab/advisor")
		takesCourse       = b.iri("vocab/takesCourse")
		teacherOf         = b.iri("vocab/teacherOf")
		teachingAssistant = b.iri("vocab/teachingAssistantOf")
		publicationAuthor = b.iri("vocab/publicationAuthor")
		headOf            = b.iri("vocab/headOf")
		undergradFrom     = b.iri("vocab/undergraduateDegreeFrom")
		doctoralFrom      = b.iri("vocab/doctoralDegreeFrom")
		name              = b.iri("vocab/name")
		emailAddress      = b.iri("vocab/emailAddress")
		researchInterest  = b.iri("vocab/researchInterest")
	)
	interests := []string{"Ontologies", "Databases", "Networking",
		"Graphics", "Compilers", "AI", "Systems", "TheoryOfComputation"}

	deptSeq := 0
	for u := 0; u < universities && deptSeq < departments; u++ {
		univ := b.iri("University%d", u)
		b.add(univ, typePred, university)
		b.add(univ, name, rdf.NewLiteral(b.ns+"University"+itoa(u)))
		for d := 0; d < deptsPerUniv && deptSeq < departments; d++ {
			deptSeq++
			dept := b.iri("University%d/Department%d", u, d)
			b.add(dept, typePred, department)
			b.add(dept, subOrganizationOf, univ)

			group := b.iri("University%d/Department%d/ResearchGroup0", u, d)
			b.add(group, typePred, researchGroup)
			b.add(group, subOrganizationOf, dept)

			// Faculty.
			type facultySpec struct {
				class  rdf.Term
				prefix string
				count  int
			}
			specs := []facultySpec{
				{fullProfessor, "FullProfessor", b.rangeInt(7, 10)},
				{associateProf, "AssociateProfessor", b.rangeInt(10, 14)},
				{assistantProf, "AssistantProfessor", b.rangeInt(8, 11)},
				{lecturerClass, "Lecturer", b.rangeInt(5, 7)},
			}
			var faculty []rdf.Term
			var courses []rdf.Term
			courseSeq := 0
			for _, spec := range specs {
				for i := 0; i < spec.count; i++ {
					f := b.iri("University%d/Department%d/%s%d", u, d, spec.prefix, i)
					b.add(f, typePred, spec.class)
					b.add(f, worksFor, dept)
					b.add(f, name, rdf.NewLiteral(spec.prefix+itoa(i)))
					b.add(f, emailAddress, rdf.NewLiteral(spec.prefix+itoa(i)+"@u"+itoa(u)+".edu"))
					b.add(f, undergradFrom, b.iri("University%d", b.rng.Intn(universities)))
					if spec.prefix != "Lecturer" {
						b.add(f, doctoralFrom, b.iri("University%d", b.rng.Intn(universities)))
						b.add(f, researchInterest, rdf.NewLiteral(pick(b, interests)))
					}
					// Each faculty member teaches 1–2 courses.
					for c := 0; c < b.rangeInt(1, 2); c++ {
						course := b.iri("University%d/Department%d/Course%d", u, d, courseSeq)
						class := courseClass
						if courseSeq%4 == 3 {
							class = gradCourseClass
						}
						courseSeq++
						b.add(course, typePred, class)
						b.add(f, teacherOf, course)
						courses = append(courses, course)
					}
					faculty = append(faculty, f)
				}
			}
			// The first full professor heads the department.
			b.add(faculty[0], headOf, dept)

			// Publications: 3–7 per faculty member.
			pubSeq := 0
			for _, f := range faculty {
				for p := 0; p < b.rangeInt(3, 7); p++ {
					pub := b.iri("University%d/Department%d/Publication%d", u, d, pubSeq)
					pubSeq++
					b.add(pub, typePred, publicationClass)
					b.add(pub, publicationAuthor, f)
				}
			}

			// Graduate students.
			var grads []rdf.Term
			for i := 0; i < b.rangeInt(12, 18); i++ {
				s := b.iri("University%d/Department%d/GraduateStudent%d", u, d, i)
				b.add(s, typePred, gradStudent)
				b.add(s, memberOf, dept)
				b.add(s, advisor, pick(b, faculty))
				b.add(s, undergradFrom, b.iri("University%d", b.rng.Intn(universities)))
				for c := 0; c < b.rangeInt(2, 3); c++ {
					b.add(s, takesCourse, pick(b, courses))
				}
				grads = append(grads, s)
			}
			// Some graduate students TA a course.
			for i := 0; i < len(grads)/3; i++ {
				b.add(grads[i], teachingAssistant, pick(b, courses))
			}

			// Undergraduates, ≈3× the graduate count.
			for i := 0; i < b.rangeInt(36, 54); i++ {
				s := b.iri("University%d/Department%d/UndergraduateStudent%d", u, d, i)
				b.add(s, typePred, underStudent)
				b.add(s, memberOf, dept)
				for c := 0; c < b.rangeInt(2, 4); c++ {
					b.add(s, takesCourse, pick(b, courses))
				}
				if b.rng.Intn(5) == 0 {
					b.add(s, advisor, pick(b, faculty))
				}
			}
		}
	}
	return b.g
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
