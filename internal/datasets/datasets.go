// Package datasets provides seeded, deterministic generators for the
// benchmark data graphs of the paper's evaluation (§6.1, Table 1): LUBM
// (the primary target of Figures 6–9), GovTrack (the running example's
// domain), Berlin/BSBM, and PBlog. The real datasets and the original
// Java generators are not redistributable or runnable here; these
// generators reproduce each dataset's *shape* — vocabulary, entity
// ratios and degree profile — which is what the experiments depend on.
//
// Every generator is a pure function of its configuration (including
// the seed): the same Config always yields the identical graph.
package datasets

import (
	"fmt"
	"math/rand"

	"sama/internal/rdf"
)

// Generator is a named dataset generator producing a graph of roughly
// the requested number of triples.
type Generator interface {
	// Name is the dataset name as it appears in Table 1.
	Name() string
	// Generate builds a graph with approximately targetTriples triples
	// using the given seed.
	Generate(targetTriples int, seed int64) *rdf.Graph
}

// All returns every registered generator in Table 1 order.
func All() []Generator {
	return []Generator{PBlog{}, GovTrack{}, Berlin{}, LUBM{}}
}

// ByName returns the generator with the given (case-sensitive) name.
func ByName(name string) (Generator, error) {
	for _, g := range All() {
		if g.Name() == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q", name)
}

// builder accumulates triples with convenience constructors shared by
// the generators.
type builder struct {
	g   *rdf.Graph
	rng *rand.Rand
	ns  string
}

func newBuilder(ns string, seed int64) *builder {
	return &builder{
		g:   rdf.NewGraph(),
		rng: rand.New(rand.NewSource(seed)),
		ns:  ns,
	}
}

func (b *builder) iri(format string, args ...any) rdf.Term {
	return rdf.NewIRI(b.ns + fmt.Sprintf(format, args...))
}

func (b *builder) add(s, p, o rdf.Term) {
	b.g.AddTriple(rdf.Triple{S: s, P: p, O: o})
}

func (b *builder) triples() int { return b.g.EdgeCount() }

// rangeInt returns a uniform integer in [lo, hi].
func (b *builder) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + b.rng.Intn(hi-lo+1)
}

// pick returns a uniformly random element of xs.
func pick[T any](b *builder, xs []T) T {
	return xs[b.rng.Intn(len(xs))]
}

// RDFType is the rdf:type predicate IRI shared by the generators.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

var typePred = rdf.NewIRI(RDFType)
