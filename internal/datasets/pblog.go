package datasets

import "sama/internal/rdf"

// PBlog generates graphs shaped like the political-blogosphere network
// used in the paper (Adamic & Glance's polblogs, distributed from the
// UMich network data collection the paper cites): a directed power-law
// link network between blogs, each annotated with a political leaning
// and a handful of labelled posts. The link structure follows
// preferential attachment, giving the heavy-tailed in-degree
// distribution that distinguishes social graphs from the tree-ish
// benchmark schemas.
type PBlog struct{}

// PBlogNamespace is the IRI prefix of every generated resource.
const PBlogNamespace = "http://pblog.example.org/"

// Name implements Generator.
func (PBlog) Name() string { return "PBlog" }

// triplesPerBlog approximates the yield of one blog: links, leaning,
// posts and topics.
const triplesPerBlog = 14

// Generate implements Generator.
func (PBlog) Generate(targetTriples int, seed int64) *rdf.Graph {
	b := newBuilder(PBlogNamespace, seed)
	blogs := targetTriples / triplesPerBlog
	if blogs < 3 {
		blogs = 3
	}

	var (
		blogClass = b.iri("class/Blog")
		postClass = b.iri("class/Post")

		linksTo = b.iri("vocab/linksTo")
		leaning = b.iri("vocab/leaning")
		hasPost = b.iri("vocab/hasPost")
		topic   = b.iri("vocab/topic")
	)
	leanings := []string{"liberal", "conservative"}
	topics := []string{"elections", "economy", "foreign policy",
		"media", "healthcare", "environment"}

	nodes := make([]rdf.Term, blogs)
	// Preferential attachment: track one slot per received link so that
	// popular blogs attract more links.
	var attachment []int
	for i := 0; i < blogs; i++ {
		blog := b.iri("blog/Blog%d", i)
		nodes[i] = blog
		b.add(blog, typePred, blogClass)
		b.add(blog, leaning, rdf.NewLiteral(pick(b, leanings)))
		// Outgoing links: 1–6, preferentially to already-linked blogs.
		if i > 0 {
			links := b.rangeInt(1, 6)
			for l := 0; l < links; l++ {
				var target int
				if len(attachment) > 0 && b.rng.Intn(100) < 70 {
					target = attachment[b.rng.Intn(len(attachment))]
				} else {
					target = b.rng.Intn(i)
				}
				b.add(blog, linksTo, nodes[target])
				attachment = append(attachment, target)
			}
		}
		// Posts with topics.
		for p := 0; p < b.rangeInt(2, 4); p++ {
			post := b.iri("post/Blog%d_Post%d", i, p)
			b.add(post, typePred, postClass)
			b.add(blog, hasPost, post)
			b.add(post, topic, rdf.NewLiteral(pick(b, topics)))
		}
	}
	return b.g
}
