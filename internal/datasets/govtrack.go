package datasets

import "sama/internal/rdf"

// GovTrack generates graphs shaped like the paper's Figure 1 excerpt of
// the GovTrack database: legislators with gender, roles and offices,
// bills with subjects, and amendments connecting sponsors to bills via
// the sponsor / aTo / subject vocabulary of the running example.
type GovTrack struct{}

// GovTrackNamespace is the IRI prefix of every generated resource.
const GovTrackNamespace = "http://govtrack.example.org/"

// Name implements Generator.
func (GovTrack) Name() string { return "GOV" }

// triplesPerLegislator approximates the yield of one legislator with
// their share of bills and amendments: ≈6 person/role triples, ≈1.8
// bill triples and ≈6 amendment triples.
const triplesPerLegislator = 14

// Generate implements Generator.
func (GovTrack) Generate(targetTriples int, seed int64) *rdf.Graph {
	b := newBuilder(GovTrackNamespace, seed)
	legislators := targetTriples / triplesPerLegislator
	if legislators < 4 {
		legislators = 4
	}

	var (
		personClass    = b.iri("class/Person")
		billClass      = b.iri("class/Bill")
		amendmentClass = b.iri("class/Amendment")
		termClass      = b.iri("class/Term")

		sponsor   = b.iri("vocab/sponsor")
		aTo       = b.iri("vocab/aTo")
		subject   = b.iri("vocab/subject")
		gender    = b.iri("vocab/gender")
		hasRole   = b.iri("vocab/hasRole")
		forOffice = b.iri("vocab/forOffice")
		name      = b.iri("vocab/name")
	)
	subjects := []string{"Health Care", "Education", "Defense", "Energy",
		"Agriculture", "Transportation", "Taxation", "Civil Rights",
		"Immigration", "Environment"}
	states := []string{"NY", "CA", "TX", "WA", "FL", "IL", "MA", "OH"}
	firstNames := []string{"Carla", "Jeff", "Keith", "John", "Pierce",
		"Alice", "Peter", "Diane", "Marco", "Ruth"}
	lastNames := []string{"Bunes", "Ryser", "Farmer", "McRie", "Dickes",
		"Nimber", "Traves", "Olsen", "Vidal", "Katz"}

	// Legislators.
	people := make([]rdf.Term, legislators)
	for i := range people {
		p := b.iri("person/P%04d", i)
		people[i] = p
		b.add(p, typePred, personClass)
		b.add(p, name, rdf.NewLiteral(pick(b, firstNames)+" "+pick(b, lastNames)+" "+itoa(i)))
		g := "Male"
		if b.rng.Intn(100) < 30 {
			g = "Female"
		}
		b.add(p, gender, rdf.NewLiteral(g))
		// A role with an office, like the Figure 1 Term/Senate fragment.
		role := b.iri("term/T%04d", i)
		b.add(role, typePred, termClass)
		b.add(p, hasRole, role)
		b.add(role, forOffice, b.iri("office/Senate_%s", pick(b, states)))
	}

	// Bills: one for every two legislators, each with 1–2 subjects and
	// a sponsoring legislator.
	bills := make([]rdf.Term, legislators/2+1)
	for i := range bills {
		bl := b.iri("bill/B%05d", i)
		bills[i] = bl
		b.add(bl, typePred, billClass)
		for s := 0; s < b.rangeInt(1, 2); s++ {
			b.add(bl, subject, rdf.NewLiteral(pick(b, subjects)))
		}
		b.add(pick(b, people), sponsor, bl)
	}

	// Amendments: two per legislator on average; each sponsored by a
	// person and amending a bill (the Figure 1 chain person —sponsor→
	// amendment —aTo→ bill —subject→ topic).
	amendments := legislators * 2
	for i := 0; i < amendments; i++ {
		am := b.iri("amendment/A%05d", i)
		b.add(am, typePred, amendmentClass)
		b.add(pick(b, people), sponsor, am)
		b.add(am, aTo, pick(b, bills))
	}
	return b.g
}
