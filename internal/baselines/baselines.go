// Package baselines defines the common contract implemented by the
// three comparator systems of the paper's evaluation (§6): DOGMA
// (disk-oriented exact subgraph matching, Bröcheler et al. ISWC'09),
// SAPPER (approximate subgraph matching with edge misses, Zhang et al.
// PVLDB'10) and BOUNDED (bounded graph simulation, Fan et al. PVLDB'10).
// Each is reimplemented from its paper's algorithmic core at the level
// of fidelity the experiments need: who finds which matches, at what
// asymptotic cost.
package baselines

import (
	"sort"

	"sama/internal/rdf"
)

// Match is one answer produced by a baseline matcher: a binding of the
// query's nodes to data nodes plus the matched subgraph.
type Match struct {
	// Subst binds the query variables (node and edge variables alike).
	Subst rdf.Substitution
	// Graph is the matched data subgraph.
	Graph *rdf.Graph
	// Cost is the matcher-specific distance of the match from the query
	// (0 for exact matches; SAPPER counts missed edges, BOUNDED counts
	// stretched edges).
	Cost float64
}

// Matcher is a query-answering system under comparison.
type Matcher interface {
	// Name identifies the system in experiment output.
	Name() string
	// Query returns up to k matches (k ≤ 0: all, within the matcher's
	// internal budget), ordered by non-decreasing Cost.
	Query(q *rdf.QueryGraph, k int) ([]Match, error)
}

// NodeCandidates builds the per-query-node candidate sets every matcher
// starts from: a constant query node matches exactly the data node with
// the same term (if any); a variable matches any data node (returned as
// nil, meaning “unrestricted”).
func NodeCandidates(g *rdf.Graph, q *rdf.QueryGraph) map[rdf.NodeID][]rdf.NodeID {
	out := make(map[rdf.NodeID][]rdf.NodeID, q.NodeCount())
	q.Nodes(func(qn rdf.NodeID) bool {
		t := q.Term(qn)
		if t.IsVar() {
			out[qn] = nil
			return true
		}
		if dn := g.NodeByTerm(t); dn != rdf.InvalidNode {
			out[qn] = []rdf.NodeID{dn}
		} else {
			out[qn] = []rdf.NodeID{}
		}
		return true
	})
	return out
}

// SortMatches orders matches by cost, breaking ties by the textual form
// of the bindings for determinism.
func SortMatches(ms []Match) {
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Cost != ms[j].Cost {
			return ms[i].Cost < ms[j].Cost
		}
		return SubstKey(ms[i].Subst) < SubstKey(ms[j].Subst)
	})
}

// SubstKey renders a substitution as a canonical string, for dedup maps
// and deterministic ordering.
func SubstKey(s rdf.Substitution) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, '=')
		b = append(b, s[k].Label()...)
		b = append(b, ';')
	}
	return string(b)
}

// Truncate returns the first k matches (k ≤ 0 returns all).
func Truncate(ms []Match, k int) []Match {
	if k > 0 && len(ms) > k {
		return ms[:k]
	}
	return ms
}
