package baselines

import (
	"testing"

	"sama/internal/rdf"
)

func TestNodeCandidates(t *testing.T) {
	g := rdf.NewGraph()
	g.AddTriple(rdf.Triple{S: rdf.NewIRI("a"), P: rdf.NewIRI("p"), O: rdf.NewIRI("b")})
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewIRI("a"), P: rdf.NewIRI("p"), O: rdf.NewVar("x")})
	q.AddTriple(rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI("p"), O: rdf.NewIRI("missing")})

	c := NodeCandidates(g, q)
	aq := q.NodeByTerm(rdf.NewIRI("a"))
	if got := c[aq]; len(got) != 1 || g.Term(got[0]) != rdf.NewIRI("a") {
		t.Errorf("constant candidates = %v", got)
	}
	xq := q.NodeByTerm(rdf.NewVar("x"))
	if got := c[xq]; got != nil {
		t.Errorf("variable candidates should be nil (unrestricted), got %v", got)
	}
	mq := q.NodeByTerm(rdf.NewIRI("missing"))
	if got := c[mq]; got == nil || len(got) != 0 {
		t.Errorf("absent constant should give empty non-nil set, got %v", got)
	}
}

func TestSortAndTruncate(t *testing.T) {
	ms := []Match{
		{Cost: 2, Subst: rdf.Substitution{"x": rdf.NewIRI("b")}},
		{Cost: 0, Subst: rdf.Substitution{"x": rdf.NewIRI("z")}},
		{Cost: 0, Subst: rdf.Substitution{"x": rdf.NewIRI("a")}},
	}
	SortMatches(ms)
	if ms[0].Cost != 0 || ms[1].Cost != 0 || ms[2].Cost != 2 {
		t.Errorf("costs after sort: %v %v %v", ms[0].Cost, ms[1].Cost, ms[2].Cost)
	}
	if ms[0].Subst["x"].Value != "a" {
		t.Errorf("tie-break by subst failed: %v", ms[0].Subst)
	}
	if got := Truncate(ms, 2); len(got) != 2 {
		t.Errorf("Truncate(2) = %d", len(got))
	}
	if got := Truncate(ms, 0); len(got) != 3 {
		t.Errorf("Truncate(0) = %d", len(got))
	}
}

func TestSubstKeyDeterministic(t *testing.T) {
	s := rdf.Substitution{"b": rdf.NewIRI("2"), "a": rdf.NewIRI("1")}
	if SubstKey(s) != SubstKey(s.Clone()) {
		t.Error("SubstKey not stable")
	}
	if SubstKey(s) != "a=1;b=2;" {
		t.Errorf("SubstKey = %q", SubstKey(s))
	}
}
