package baselines

import "sama/internal/rdf"

// Figure1Graph builds the GovTrack data graph of the paper's Figure 1(a).
// It lives here so every baseline package (and the experiment harness)
// tests against the same fixture.
func Figure1Graph() *rdf.Graph {
	g := rdf.NewGraph()
	iri := rdf.NewIRI
	lit := rdf.NewLiteral
	add := func(s, p, o rdf.Term) { g.AddTriple(rdf.Triple{S: s, P: p, O: o}) }
	add(iri("CarlaBunes"), iri("sponsor"), iri("A0056"))
	add(iri("JeffRyser"), iri("sponsor"), iri("A1589"))
	add(iri("KeithFarmer"), iri("sponsor"), iri("A1232"))
	add(iri("JohnMcRie"), iri("sponsor"), iri("A0772"))
	add(iri("JohnMcRie"), iri("sponsor"), iri("A1232"))
	add(iri("PierceDickes"), iri("sponsor"), iri("A0467"))
	add(iri("A0056"), iri("aTo"), iri("B1432"))
	add(iri("A1589"), iri("aTo"), iri("B0532"))
	add(iri("A1232"), iri("aTo"), iri("B0045"))
	add(iri("A0772"), iri("aTo"), iri("B0045"))
	add(iri("A0467"), iri("aTo"), iri("B0532"))
	add(iri("JeffRyser"), iri("sponsor"), iri("B0045"))
	add(iri("PeterTraves"), iri("sponsor"), iri("B0532"))
	add(iri("AliceNimber"), iri("sponsor"), iri("B1432"))
	add(iri("PierceDickes"), iri("sponsor"), iri("B1432"))
	add(iri("B1432"), iri("subject"), lit("Health Care"))
	add(iri("B0532"), iri("subject"), lit("Health Care"))
	add(iri("B0045"), iri("subject"), lit("Health Care"))
	add(iri("JeffRyser"), iri("gender"), lit("Male"))
	add(iri("KeithFarmer"), iri("gender"), lit("Male"))
	add(iri("JohnMcRie"), iri("gender"), lit("Male"))
	add(iri("PierceDickes"), iri("gender"), lit("Male"))
	add(iri("CarlaBunes"), iri("gender"), lit("Female"))
	add(iri("AliceNimber"), iri("gender"), lit("Female"))
	return g
}

// FigureQ1 builds the paper's query Q1.
func FigureQ1() *rdf.QueryGraph {
	iri := rdf.NewIRI
	lit := rdf.NewLiteral
	vr := rdf.NewVar
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: iri("CarlaBunes"), P: iri("sponsor"), O: vr("v1")})
	q.AddTriple(rdf.Triple{S: vr("v1"), P: iri("aTo"), O: vr("v2")})
	q.AddTriple(rdf.Triple{S: vr("v2"), P: iri("subject"), O: lit("Health Care")})
	q.AddTriple(rdf.Triple{S: vr("v3"), P: iri("sponsor"), O: vr("v2")})
	q.AddTriple(rdf.Triple{S: vr("v3"), P: iri("gender"), O: lit("Male")})
	return q
}

// FigureQ2 builds the paper's query Q2 (no exact answer exists).
func FigureQ2() *rdf.QueryGraph {
	iri := rdf.NewIRI
	lit := rdf.NewLiteral
	vr := rdf.NewVar
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: vr("v3"), P: iri("gender"), O: lit("Male")})
	q.AddTriple(rdf.Triple{S: vr("v3"), P: iri("sponsor"), O: vr("v2")})
	q.AddTriple(rdf.Triple{S: vr("v2"), P: vr("e1"), O: lit("Health Care")})
	return q
}
