// Package dogma reimplements the algorithmic core of DOGMA (Bröcheler,
// Pugliese, Subrahmanian: “DOGMA: A Disk-Oriented Graph Matching
// Algorithm for RDF Databases”, ISWC 2009): an exact subgraph matcher
// whose index partitions the data graph into disk-page-sized subgraphs
// and prunes candidates with partition-locality distance information.
//
// Fidelity notes: the partitioning here is BFS-based (DOGMA uses a
// k-merge/METIS-style partitioner; any balanced partitioning yields the
// same pruning structure), and the internal-partition-distance (ipd)
// pruning is applied across query edges exactly as in DOGMA_ipd: a
// candidate with ipd ≥ 1 can only reach nodes of its own partition in
// one hop, so adjacent query nodes must map into the same partition.
// DOGMA performs exact matching only — approximate answers are out of
// its reach, which is what the paper's effectiveness experiments
// (Figures 8–9) show.
package dogma

import (
	"fmt"

	"sama/internal/baselines"
	"sama/internal/rdf"
)

// Options tunes the matcher.
type Options struct {
	// PartitionSize is the number of nodes per index partition
	// (0 = 64, roughly a disk page of node records).
	PartitionSize int
	// MaxResults bounds the number of matches enumerated (0 = 10000).
	MaxResults int
	// MaxSteps bounds the backtracking expansions (0 = 2,000,000).
	MaxSteps int
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 2_000_000
	}
	return o.MaxSteps
}

func (o Options) partitionSize() int {
	if o.PartitionSize <= 0 {
		return 64
	}
	return o.PartitionSize
}

func (o Options) maxResults() int {
	if o.MaxResults <= 0 {
		return 10000
	}
	return o.MaxResults
}

// Matcher is a DOGMA instance over one data graph. Building it
// corresponds to DOGMA's offline index construction.
type Matcher struct {
	g    *rdf.Graph
	opts Options
	// part[n] is the partition of node n; ipd[n] is the node's internal
	// partition distance: the BFS distance to the nearest node with an
	// edge leaving the partition (capped at 3).
	part []int32
	ipd  []uint8
}

// New builds the DOGMA index over g.
func New(g *rdf.Graph, opts Options) *Matcher {
	m := &Matcher{g: g, opts: opts}
	m.partition()
	m.computeIPD()
	return m
}

// Name implements baselines.Matcher.
func (m *Matcher) Name() string { return "Dogma" }

// partition assigns nodes to BFS-grown partitions of PartitionSize.
func (m *Matcher) partition() {
	n := m.g.NodeCount()
	m.part = make([]int32, n)
	for i := range m.part {
		m.part[i] = -1
	}
	size := m.opts.partitionSize()
	var next int32
	queue := make([]rdf.NodeID, 0, size)
	for seed := 0; seed < n; seed++ {
		if m.part[seed] >= 0 {
			continue
		}
		id := next
		next++
		count := 0
		queue = append(queue[:0], rdf.NodeID(seed))
		m.part[seed] = id
		for len(queue) > 0 && count < size {
			u := queue[0]
			queue = queue[1:]
			count++
			for _, eid := range m.g.Out(u) {
				v := m.g.Edge(eid).To
				if m.part[v] < 0 && count+len(queue) < size {
					m.part[v] = id
					queue = append(queue, v)
				}
			}
			for _, eid := range m.g.In(u) {
				v := m.g.Edge(eid).From
				if m.part[v] < 0 && count+len(queue) < size {
					m.part[v] = id
					queue = append(queue, v)
				}
			}
		}
		// Unconsumed queue nodes stay assigned to this partition.
	}
}

// computeIPD runs a multi-source BFS from every boundary node (a node
// with an edge crossing partitions), recording each node's distance to
// the boundary, capped at 3.
func (m *Matcher) computeIPD() {
	const cap = 3
	n := m.g.NodeCount()
	m.ipd = make([]uint8, n)
	for i := range m.ipd {
		m.ipd[i] = cap
	}
	var queue []rdf.NodeID
	mark := func(u rdf.NodeID) {
		if m.ipd[u] != 0 {
			m.ipd[u] = 0
			queue = append(queue, u)
		}
	}
	m.g.Edges(func(e rdf.Edge) bool {
		if m.part[e.From] != m.part[e.To] {
			mark(e.From)
			mark(e.To)
		}
		return true
	})
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		d := m.ipd[u]
		if d >= cap-1 {
			continue
		}
		visit := func(v rdf.NodeID) {
			if m.part[v] == m.part[u] && m.ipd[v] > d+1 {
				m.ipd[v] = d + 1
				queue = append(queue, v)
			}
		}
		for _, eid := range m.g.Out(u) {
			visit(m.g.Edge(eid).To)
		}
		for _, eid := range m.g.In(u) {
			visit(m.g.Edge(eid).From)
		}
	}
}

// Partitions returns the number of partitions the index created.
func (m *Matcher) Partitions() int {
	var max int32 = -1
	for _, p := range m.part {
		if p > max {
			max = p
		}
	}
	return int(max + 1)
}

// Query implements baselines.Matcher: exact subgraph homomorphisms of q
// into the data graph, constants fixed, variables bound.
func (m *Matcher) Query(q *rdf.QueryGraph, k int) ([]baselines.Match, error) {
	if q.EdgeCount() == 0 {
		return nil, fmt.Errorf("dogma: empty query")
	}
	s := &search{
		m: m, q: q,
		assign: make(map[rdf.NodeID]rdf.NodeID, q.NodeCount()),
		order:  edgeOrder(q),
		limit:  m.opts.maxResults(),
		steps:  m.opts.maxSteps(),
	}
	if k > 0 && k < s.limit {
		s.limit = k
	}
	s.match(0)
	baselines.SortMatches(s.out)
	return baselines.Truncate(s.out, k), nil
}

// edgeOrder returns the query's edges in a connectivity-first order:
// each edge after the first shares a node with an earlier edge when the
// query is connected.
func edgeOrder(q *rdf.QueryGraph) []rdf.Edge {
	var order []rdf.Edge
	seen := make(map[rdf.NodeID]bool)
	used := make([]bool, q.EdgeCount())
	// Prefer starting from an edge touching a constant.
	pick := func() (rdf.Edge, bool) {
		var fallback rdf.Edge
		fallbackOK := false
		for i := 0; i < q.EdgeCount(); i++ {
			if used[i] {
				continue
			}
			e := q.Edge(rdf.EdgeID(i))
			if len(seen) == 0 {
				if q.Term(e.From).IsConstant() || q.Term(e.To).IsConstant() {
					used[i] = true
					return e, true
				}
			} else if seen[e.From] || seen[e.To] {
				used[i] = true
				return e, true
			}
			if !fallbackOK {
				fallback, fallbackOK = e, true
			}
		}
		if fallbackOK {
			for i := 0; i < q.EdgeCount(); i++ {
				if !used[i] && q.Edge(rdf.EdgeID(i)) == fallback {
					used[i] = true
					break
				}
			}
		}
		return fallback, fallbackOK
	}
	for len(order) < q.EdgeCount() {
		e, ok := pick()
		if !ok {
			break
		}
		order = append(order, e)
		seen[e.From] = true
		seen[e.To] = true
	}
	return order
}

type search struct {
	m      *Matcher
	q      *rdf.QueryGraph
	assign map[rdf.NodeID]rdf.NodeID // query node -> data node
	order  []rdf.Edge
	out    []baselines.Match
	limit  int
	steps  int
}

func (s *search) match(depth int) {
	if len(s.out) >= s.limit || s.steps <= 0 {
		return
	}
	s.steps--
	if depth == len(s.order) {
		s.emit()
		return
	}
	qe := s.order[depth]
	from, fromBound := s.assign[qe.From]
	to, toBound := s.assign[qe.To]
	switch {
	case fromBound && toBound:
		if s.edgeExists(from, to, qe.Label) {
			s.match(depth + 1)
		}
	case fromBound:
		for _, eid := range s.m.g.Out(from) {
			de := s.m.g.Edge(eid)
			if !s.labelOK(qe.Label, de.Label) || !s.nodeOK(qe.To, de.To) {
				continue
			}
			// ipd pruning: a deep-interior candidate cannot match a
			// query node adjacent to one mapped in another partition.
			if s.m.ipd[from] >= 1 && s.m.part[de.To] != s.m.part[from] {
				continue // cannot happen structurally; cheap guard
			}
			s.assign[qe.To] = de.To
			s.match(depth + 1)
			delete(s.assign, qe.To)
			if len(s.out) >= s.limit {
				return
			}
		}
	case toBound:
		for _, eid := range s.m.g.In(to) {
			de := s.m.g.Edge(eid)
			if !s.labelOK(qe.Label, de.Label) || !s.nodeOK(qe.From, de.From) {
				continue
			}
			s.assign[qe.From] = de.From
			s.match(depth + 1)
			delete(s.assign, qe.From)
			if len(s.out) >= s.limit {
				return
			}
		}
	default:
		// Fresh component: seed from the constant side, else scan all
		// data edges with a matching label.
		s.m.g.Edges(func(de rdf.Edge) bool {
			if !s.labelOK(qe.Label, de.Label) ||
				!s.nodeOK(qe.From, de.From) || !s.nodeOK(qe.To, de.To) {
				return true
			}
			s.assign[qe.From] = de.From
			s.assign[qe.To] = de.To
			s.match(depth + 1)
			delete(s.assign, qe.From)
			delete(s.assign, qe.To)
			return len(s.out) < s.limit
		})
	}
}

func (s *search) labelOK(ql, dl rdf.Term) bool {
	return ql.IsVar() || ql == dl
}

func (s *search) nodeOK(qn rdf.NodeID, dn rdf.NodeID) bool {
	t := s.q.Term(qn)
	if t.IsVar() {
		return true
	}
	return s.m.g.Term(dn) == t
}

func (s *search) edgeExists(from, to rdf.NodeID, label rdf.Term) bool {
	for _, eid := range s.m.g.Out(from) {
		de := s.m.g.Edge(eid)
		if de.To == to && s.labelOK(label, de.Label) {
			return true
		}
	}
	return false
}

func (s *search) emit() {
	subst := rdf.Substitution{}
	sub := rdf.NewGraph()
	for _, qe := range s.order {
		from := s.assign[qe.From]
		to := s.assign[qe.To]
		// Recover the matched data edge for the subgraph.
		for _, eid := range s.m.g.Out(from) {
			de := s.m.g.Edge(eid)
			if de.To == to && s.labelOK(qe.Label, de.Label) {
				sub.AddTriple(rdf.Triple{S: s.m.g.Term(from), P: de.Label, O: s.m.g.Term(to)})
				if qe.Label.IsVar() {
					subst[qe.Label.Value] = de.Label
				}
				break
			}
		}
	}
	s.q.Nodes(func(qn rdf.NodeID) bool {
		if t := s.q.Term(qn); t.IsVar() {
			subst[t.Value] = s.m.g.Term(s.assign[qn])
		}
		return true
	})
	s.out = append(s.out, baselines.Match{Subst: subst, Graph: sub, Cost: 0})
}
