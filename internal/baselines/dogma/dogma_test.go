package dogma

import (
	"testing"

	"sama/internal/baselines"
	"sama/internal/rdf"
)

func TestDogmaExactQ1(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	matches, err := m.Query(baselines.FigureQ1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Q1 has exactly one exact homomorphism in Figure 1: v1=A0056,
	// v2=B1432, v3=PierceDickes.
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	got := matches[0].Subst
	want := map[string]string{"v1": "A0056", "v2": "B1432", "v3": "PierceDickes"}
	for k, v := range want {
		if got[k].Value != v {
			t.Errorf("?%s = %v, want %s", k, got[k], v)
		}
	}
	if matches[0].Cost != 0 {
		t.Errorf("exact match cost = %v", matches[0].Cost)
	}
	if matches[0].Graph.EdgeCount() != 5 {
		t.Errorf("match graph edges = %d, want 5", matches[0].Graph.EdgeCount())
	}
}

func TestDogmaFindsNothingForQ2Shape(t *testing.T) {
	// Q2 (gender + direct sponsor + any edge to Health Care) does have
	// exact homomorphisms via the variable predicate: Dogma treats ?e1
	// as wildcard; e.g. PierceDickes sponsors B1432 subject Health Care.
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	matches, err := m.Query(baselines.FigureQ2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ma := range matches {
		if ma.Cost != 0 {
			t.Error("dogma must only return exact matches")
		}
	}
}

func TestDogmaMissingConstant(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewIRI("Nobody"), P: rdf.NewIRI("sponsor"), O: rdf.NewVar("x")})
	matches, err := m.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("matches for absent constant = %d, want 0", len(matches))
	}
}

func TestDogmaRelaxedQueryFails(t *testing.T) {
	// A query asking for a female sponsor of an amendment to a bill on
	// Health Care sponsored by a male — with a wrong edge label — has no
	// exact match; Dogma must return nothing (this is the approximate
	// gap Sama fills, Figures 8–9).
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewIRI("CarlaBunes"), P: rdf.NewIRI("proposes"), O: rdf.NewVar("v1")})
	q.AddTriple(rdf.Triple{S: rdf.NewVar("v1"), P: rdf.NewIRI("aTo"), O: rdf.NewVar("v2")})
	matches, err := m.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("relaxed query matched %d times under exact semantics", len(matches))
	}
}

func TestDogmaLimit(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewIRI("sponsor"), O: rdf.NewVar("o")})
	all, err := m.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 { // 10 sponsor edges in Figure 1
		t.Errorf("sponsor matches = %d, want 10", len(all))
	}
	two, err := m.Query(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Errorf("limited matches = %d, want 2", len(two))
	}
}

func TestDogmaPartitioning(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{PartitionSize: 4})
	if m.Partitions() < 2 {
		t.Errorf("partitions = %d, want several with size 4", m.Partitions())
	}
	// Partitioning must not change the query result.
	matches, err := m.Query(baselines.FigureQ1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Errorf("matches with small partitions = %d, want 1", len(matches))
	}
}

func TestDogmaEmptyQuery(t *testing.T) {
	m := New(baselines.Figure1Graph(), Options{})
	if _, err := m.Query(rdf.NewQueryGraph(), 0); err == nil {
		t.Error("empty query accepted")
	}
}

func TestDogmaName(t *testing.T) {
	if New(rdf.NewGraph(), Options{}).Name() != "Dogma" {
		t.Error("name wrong")
	}
}
