// Package bounded reimplements the algorithmic core of bounded graph
// simulation (Fan, Li, Ma, Tang, Wu, Wu: “Graph Pattern Matching: From
// Intractable to Polynomial Time”, PVLDB 2010): each query edge is
// interpreted as a bound on connectivity — a data node matches a query
// node if, for every query edge leaving it, some matching neighbour is
// reachable within a predefined number of hops.
//
// The match relation is computed by the cubic-time fixpoint of the
// paper (repeatedly discard candidates with an unsatisfiable edge),
// after which concrete answers are enumerated from the relation by
// backtracking over bounded-reachability checks. The per-match Cost is
// the total stretch: Σ over query edges of (hops used − 1), so an exact
// one-hop match costs 0.
package bounded

import (
	"fmt"
	"sort"

	"sama/internal/baselines"
	"sama/internal/rdf"
)

// Options tunes the matcher.
type Options struct {
	// Hops is the connectivity bound per query edge (0 = 2, the small
	// constant bound the paper's experiments use).
	Hops int
	// MaxResults bounds the number of matches enumerated (0 = 10000).
	MaxResults int
	// MaxSteps bounds the assignment enumeration (0 = 2,000,000); the
	// simulation relation itself is cubic, but the number of concrete
	// assignments drawn from it can be exponential.
	MaxSteps int
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 2_000_000
	}
	return o.MaxSteps
}

func (o Options) hops() int {
	if o.Hops <= 0 {
		return 2
	}
	return o.Hops
}

func (o Options) maxResults() int {
	if o.MaxResults <= 0 {
		return 10000
	}
	return o.MaxResults
}

// Matcher is a bounded-simulation instance over one data graph.
type Matcher struct {
	g    *rdf.Graph
	opts Options
}

// New returns a matcher over g.
func New(g *rdf.Graph, opts Options) *Matcher {
	return &Matcher{g: g, opts: opts}
}

// Name implements baselines.Matcher.
func (m *Matcher) Name() string { return "Bounded" }

// Simulate computes the bounded simulation relation: for each query
// node, the set of data nodes that can play its role. A nil entry means
// "no candidates". This is the cubic fixpoint of Fan et al.
func (m *Matcher) Simulate(q *rdf.QueryGraph) map[rdf.NodeID]map[rdf.NodeID]bool {
	hops := m.opts.hops()
	sim := make(map[rdf.NodeID]map[rdf.NodeID]bool, q.NodeCount())
	// Initial candidates by label.
	q.Nodes(func(qn rdf.NodeID) bool {
		set := make(map[rdf.NodeID]bool)
		t := q.Term(qn)
		if t.IsVar() {
			m.g.Nodes(func(dn rdf.NodeID) bool {
				set[dn] = true
				return true
			})
		} else if dn := m.g.NodeByTerm(t); dn != rdf.InvalidNode {
			set[dn] = true
		}
		sim[qn] = set
		return true
	})
	// Fixpoint: drop u from sim(qn) if some query edge qn→qm has no
	// witness within `hops` labelled steps (the first step must match
	// the edge label; bounded simulation relaxes the remaining hops).
	changed := true
	for changed {
		changed = false
		q.Nodes(func(qn rdf.NodeID) bool {
			for _, qeid := range q.Out(qn) {
				qe := q.Edge(qeid)
				for u := range sim[qn] {
					if !m.witness(u, qe.Label, sim[qe.To], hops) {
						delete(sim[qn], u)
						changed = true
					}
				}
			}
			return true
		})
	}
	return sim
}

// witness reports whether from reaches a node of targets within hops
// steps, where the first step must match label (variables match any).
func (m *Matcher) witness(from rdf.NodeID, label rdf.Term, targets map[rdf.NodeID]bool, hops int) bool {
	ok, _ := m.reach(from, label, targets, hops)
	return ok
}

// reach is witness plus the number of hops actually used (for Cost).
func (m *Matcher) reach(from rdf.NodeID, label rdf.Term, targets map[rdf.NodeID]bool, hops int) (bool, int) {
	type item struct {
		node rdf.NodeID
		dist int
	}
	// First step: labelled edge.
	var frontier []item
	for _, eid := range m.g.Out(from) {
		e := m.g.Edge(eid)
		if !label.IsVar() && e.Label != label {
			continue
		}
		if targets[e.To] {
			return true, 1
		}
		frontier = append(frontier, item{e.To, 1})
	}
	// Remaining steps: any label.
	visited := make(map[rdf.NodeID]bool, len(frontier))
	for _, it := range frontier {
		visited[it.node] = true
	}
	for len(frontier) > 0 {
		it := frontier[0]
		frontier = frontier[1:]
		if it.dist >= hops {
			continue
		}
		for _, eid := range m.g.Out(it.node) {
			to := m.g.Edge(eid).To
			if visited[to] {
				continue
			}
			if targets[to] {
				return true, it.dist + 1
			}
			visited[to] = true
			frontier = append(frontier, item{to, it.dist + 1})
		}
	}
	return false, 0
}

// Query implements baselines.Matcher: concrete assignments drawn from
// the simulation relation, each query edge realised by a bounded path.
func (m *Matcher) Query(q *rdf.QueryGraph, k int) ([]baselines.Match, error) {
	if q.EdgeCount() == 0 {
		return nil, fmt.Errorf("bounded: empty query")
	}
	sim := m.Simulate(q)
	// Any empty candidate set -> no match at all (simulation failed).
	empty := false
	q.Nodes(func(qn rdf.NodeID) bool {
		if len(sim[qn]) == 0 {
			empty = true
			return false
		}
		return true
	})
	if empty {
		return nil, nil
	}
	s := &enumerator{
		m: m, q: q, sim: sim,
		assign: make(map[rdf.NodeID]rdf.NodeID, q.NodeCount()),
		limit:  m.opts.maxResults(),
		steps:  m.opts.maxSteps(),
		hops:   m.opts.hops(),
	}
	// Enumerate query nodes smallest candidate set first.
	q.Nodes(func(qn rdf.NodeID) bool {
		s.order = append(s.order, qn)
		return true
	})
	for i := 1; i < len(s.order); i++ {
		for j := i; j > 0 && len(sim[s.order[j]]) < len(sim[s.order[j-1]]); j-- {
			s.order[j], s.order[j-1] = s.order[j-1], s.order[j]
		}
	}
	s.enumerate(0, 0)
	baselines.SortMatches(s.out)
	return baselines.Truncate(s.out, k), nil
}

type enumerator struct {
	m      *Matcher
	q      *rdf.QueryGraph
	sim    map[rdf.NodeID]map[rdf.NodeID]bool
	order  []rdf.NodeID
	assign map[rdf.NodeID]rdf.NodeID
	out    []baselines.Match
	limit  int
	steps  int
	hops   int
}

func (s *enumerator) enumerate(depth int, stretch int) {
	if len(s.out) >= s.limit || s.steps <= 0 {
		return
	}
	s.steps--
	if depth == len(s.order) {
		s.emit(stretch)
		return
	}
	qn := s.order[depth]
	cands := make([]rdf.NodeID, 0, len(s.sim[qn]))
	for u := range s.sim[qn] {
		cands = append(cands, u)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, u := range cands {
		s.assign[qn] = u
		extra, ok := s.checkEdges(qn)
		if ok {
			s.enumerate(depth+1, stretch+extra)
		}
		delete(s.assign, qn)
		if len(s.out) >= s.limit {
			return
		}
	}
}

// checkEdges validates every query edge whose both endpoints are now
// bound and involves qn, returning the added stretch.
func (s *enumerator) checkEdges(qn rdf.NodeID) (int, bool) {
	total := 0
	check := func(qe rdf.Edge) bool {
		from, okF := s.assign[qe.From]
		to, okT := s.assign[qe.To]
		if !okF || !okT {
			return true
		}
		ok, dist := s.m.reach(from, qe.Label, map[rdf.NodeID]bool{to: true}, s.hops)
		if !ok {
			return false
		}
		total += dist - 1
		return true
	}
	for _, eid := range s.q.Out(qn) {
		if !check(s.q.Edge(eid)) {
			return 0, false
		}
	}
	for _, eid := range s.q.In(qn) {
		qe := s.q.Edge(eid)
		if qe.From == qn {
			continue // self-loop already checked
		}
		if !check(qe) {
			return 0, false
		}
	}
	return total, true
}

func (s *enumerator) emit(stretch int) {
	subst := rdf.Substitution{}
	sub := rdf.NewGraph()
	s.q.Edges(func(qe rdf.Edge) bool {
		from := s.assign[qe.From]
		to := s.assign[qe.To]
		// Record the single-hop edge when it exists; multi-hop matches
		// contribute their endpoints only (the bound is the semantics).
		for _, eid := range s.m.g.Out(from) {
			de := s.m.g.Edge(eid)
			if de.To == to && (qe.Label.IsVar() || de.Label == qe.Label) {
				sub.AddTriple(rdf.Triple{S: s.m.g.Term(from), P: de.Label, O: s.m.g.Term(to)})
				if qe.Label.IsVar() {
					subst[qe.Label.Value] = de.Label
				}
				break
			}
		}
		return true
	})
	s.q.Nodes(func(qn rdf.NodeID) bool {
		if t := s.q.Term(qn); t.IsVar() {
			subst[t.Value] = s.m.g.Term(s.assign[qn])
		}
		return true
	})
	s.out = append(s.out, baselines.Match{Subst: subst, Graph: sub, Cost: float64(stretch)})
}
