package bounded

import (
	"testing"

	"sama/internal/baselines"
	"sama/internal/rdf"
)

func TestBoundedFindsExactQ1(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	matches, err := m.Query(baselines.FigureQ1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	// The exact assignment must appear with cost 0.
	foundExact := false
	for _, ma := range matches {
		if ma.Cost == 0 &&
			ma.Subst["v1"].Value == "A0056" &&
			ma.Subst["v2"].Value == "B1432" &&
			ma.Subst["v3"].Value == "PierceDickes" {
			foundExact = true
		}
	}
	if !foundExact {
		t.Error("exact assignment missing from bounded matches")
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Cost < matches[i-1].Cost {
			t.Error("matches out of cost order")
		}
	}
}

func TestBoundedStretchMatches(t *testing.T) {
	// CarlaBunes --sponsor--> ?x --subject--> "Health Care": no direct
	// 2-hop chain exists (A0056 has no subject edge), but within 2 hops
	// the sponsor edge reaches B1432 which has one. Bounded semantics
	// accepts it with stretch 1; exact matchers reject it.
	g := baselines.Figure1Graph()
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewIRI("CarlaBunes"), P: rdf.NewIRI("sponsor"), O: rdf.NewVar("x")})
	q.AddTriple(rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI("subject"), O: rdf.NewLiteral("Health Care")})

	m := New(g, Options{Hops: 2})
	matches, err := m.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("bounded found nothing")
	}
	stretched := false
	for _, ma := range matches {
		if ma.Cost > 0 {
			stretched = true
		}
	}
	if !stretched {
		t.Error("expected at least one stretched match")
	}
	// With 1 hop the simulation reduces to exact edges: x must be a
	// bill with a subject edge directly sponsored by CarlaBunes — none.
	m1 := New(g, Options{Hops: 1})
	strict, err := m1.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 0 {
		t.Errorf("1-hop bounded matched %d, want 0", len(strict))
	}
}

func TestBoundedSimulationPrunes(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	q := baselines.FigureQ1()
	sim := m.Simulate(q)
	// ?v3 candidates must all have gender Male reachable: CarlaBunes
	// (Female) and AliceNimber (Female) must be pruned.
	v3 := q.NodeByTerm(rdf.NewVar("v3"))
	for dn := range sim[v3] {
		name := g.Term(dn).Value
		if name == "CarlaBunes" || name == "AliceNimber" {
			t.Errorf("female node %s survived simulation for ?v3", name)
		}
	}
	if len(sim[v3]) == 0 {
		t.Error("?v3 has no candidates")
	}
}

func TestBoundedNoMatch(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI("worksAt"), O: rdf.NewLiteral("Nowhere")})
	matches, err := m.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("impossible query matched %d", len(matches))
	}
}

func TestBoundedLimitAndName(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	if m.Name() != "Bounded" {
		t.Error("name wrong")
	}
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewIRI("gender"), O: rdf.NewLiteral("Male")})
	matches, err := m.Query(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Errorf("limited = %d, want 2", len(matches))
	}
	if _, err := m.Query(rdf.NewQueryGraph(), 0); err == nil {
		t.Error("empty query accepted")
	}
}

func TestBoundedDeterministic(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	q := baselines.FigureQ1()
	a, err := m.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Query(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic result size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if baselines.SubstKey(a[i].Subst) != baselines.SubstKey(b[i].Subst) {
			t.Errorf("nondeterministic match %d", i)
		}
	}
}
