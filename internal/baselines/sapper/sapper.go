// Package sapper reimplements the algorithmic core of SAPPER (Zhang,
// Yang, Jin: “SAPPER: Subgraph Indexing and Approximate Matching in
// Large Graphs”, PVLDB 2010): approximate subgraph matching that
// tolerates up to Δ missing edges between the query and the match.
//
// Fidelity notes: SAPPER enumerates the connected spanning subgraphs of
// the query with ≥ |E(q)| − Δ edges and matches each exactly, merging
// the results; the edge-miss budget and the per-match cost (number of
// missed edges) are preserved here, implemented as a single backtracking
// search that may skip up to Δ query edges. SAPPER's hybrid
// neighbourhood units are an in-memory filter; the equivalent role is
// played by candidate filtering on node labels and adjacency. The
// characteristic behaviour the evaluation depends on — SAPPER finds
// approximate matches but “introduces noise in high values of recall”
// (§6.3) — emerges from the miss budget: every subset of missed edges
// yields matches, including weakly related ones.
package sapper

import (
	"fmt"

	"sama/internal/baselines"
	"sama/internal/rdf"
)

// Options tunes the matcher.
type Options struct {
	// MaxMisses is Δ: the maximum number of query edges a match may
	// miss (0 = 2, the setting used in SAPPER's own evaluation range).
	MaxMisses int
	// MaxResults bounds the number of matches enumerated (0 = 10000).
	MaxResults int
	// MaxSteps bounds the backtracking expansions (0 = 2,000,000); the
	// miss budget makes the raw search tree exponential, so production
	// use needs a hard ceiling.
	MaxSteps int
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 2_000_000
	}
	return o.MaxSteps
}

func (o Options) maxMisses() int {
	if o.MaxMisses <= 0 {
		return 2
	}
	return o.MaxMisses
}

func (o Options) maxResults() int {
	if o.MaxResults <= 0 {
		return 10000
	}
	return o.MaxResults
}

// Matcher is a SAPPER instance over one data graph.
type Matcher struct {
	g    *rdf.Graph
	opts Options
}

// New builds a SAPPER matcher over g.
func New(g *rdf.Graph, opts Options) *Matcher {
	return &Matcher{g: g, opts: opts}
}

// Name implements baselines.Matcher.
func (m *Matcher) Name() string { return "Sapper" }

// Query implements baselines.Matcher: subgraph matches of q with up to
// Δ missing edges, ordered by number of misses.
func (m *Matcher) Query(q *rdf.QueryGraph, k int) ([]baselines.Match, error) {
	if q.EdgeCount() == 0 {
		return nil, fmt.Errorf("sapper: empty query")
	}
	maxMisses := m.opts.maxMisses()
	if maxMisses >= q.EdgeCount() {
		maxMisses = q.EdgeCount() - 1 // at least one edge must match
	}
	s := &search{
		m: m, q: q,
		assign:    make(map[rdf.NodeID]rdf.NodeID, q.NodeCount()),
		order:     edgeOrder(q),
		maxMisses: maxMisses,
		limit:     m.opts.maxResults(),
		steps:     m.opts.maxSteps(),
		seen:      make(map[string]bool),
	}
	s.match(0, 0, nil)
	baselines.SortMatches(s.out)
	return baselines.Truncate(s.out, k), nil
}

// edgeOrder emits the query edges connectivity-first (same strategy as
// the exact matchers: anchor on constants, then grow).
func edgeOrder(q *rdf.QueryGraph) []rdf.Edge {
	var order []rdf.Edge
	seen := make(map[rdf.NodeID]bool)
	used := make([]bool, q.EdgeCount())
	for len(order) < q.EdgeCount() {
		best := -1
		for i := 0; i < q.EdgeCount(); i++ {
			if used[i] {
				continue
			}
			e := q.Edge(rdf.EdgeID(i))
			connected := seen[e.From] || seen[e.To]
			anchored := q.Term(e.From).IsConstant() || q.Term(e.To).IsConstant()
			switch {
			case len(order) == 0 && anchored:
				best = i
			case len(order) > 0 && connected:
				best = i
			case best < 0:
				best = i
			}
			if best == i && (connected || (len(order) == 0 && anchored)) {
				break
			}
		}
		e := q.Edge(rdf.EdgeID(best))
		used[best] = true
		order = append(order, e)
		seen[e.From] = true
		seen[e.To] = true
	}
	return order
}

type search struct {
	m         *Matcher
	q         *rdf.QueryGraph
	assign    map[rdf.NodeID]rdf.NodeID
	order     []rdf.Edge
	maxMisses int
	limit     int
	steps     int
	out       []baselines.Match
	seen      map[string]bool
}

// match extends the assignment edge by edge; each query edge may either
// be matched against a data edge or counted as a miss (within budget).
// missed accumulates the skipped edges for cost accounting.
func (s *search) match(depth, misses int, missedEdges []rdf.EdgeID) {
	if len(s.out) >= s.limit || s.steps <= 0 {
		return
	}
	s.steps--
	if depth == len(s.order) {
		s.emit(misses)
		return
	}
	qe := s.order[depth]
	from, fromBound := s.assign[qe.From]
	to, toBound := s.assign[qe.To]
	switch {
	case fromBound && toBound:
		if s.edgeExists(from, to, qe.Label) {
			s.match(depth+1, misses, missedEdges)
		} else if misses < s.maxMisses {
			s.match(depth+1, misses+1, append(missedEdges, qe.ID))
		}
		return
	case fromBound:
		for _, eid := range s.m.g.Out(from) {
			de := s.m.g.Edge(eid)
			if !labelOK(qe.Label, de.Label) || !s.nodeOK(qe.To, de.To) {
				continue
			}
			s.assign[qe.To] = de.To
			s.match(depth+1, misses, missedEdges)
			delete(s.assign, qe.To)
			if len(s.out) >= s.limit {
				return
			}
		}
	case toBound:
		for _, eid := range s.m.g.In(to) {
			de := s.m.g.Edge(eid)
			if !labelOK(qe.Label, de.Label) || !s.nodeOK(qe.From, de.From) {
				continue
			}
			s.assign[qe.From] = de.From
			s.match(depth+1, misses, missedEdges)
			delete(s.assign, qe.From)
			if len(s.out) >= s.limit {
				return
			}
		}
	default:
		s.m.g.Edges(func(de rdf.Edge) bool {
			if !labelOK(qe.Label, de.Label) ||
				!s.nodeOK(qe.From, de.From) || !s.nodeOK(qe.To, de.To) {
				return true
			}
			s.assign[qe.From] = de.From
			s.assign[qe.To] = de.To
			s.match(depth+1, misses, missedEdges)
			delete(s.assign, qe.From)
			delete(s.assign, qe.To)
			return len(s.out) < s.limit
		})
	}
	// The edge may also be missed outright, leaving its endpoints to be
	// bound by later edges (or left unbound: a partial match).
	if misses < s.maxMisses {
		s.match(depth+1, misses+1, append(missedEdges, qe.ID))
	}
}

func labelOK(ql, dl rdf.Term) bool { return ql.IsVar() || ql == dl }

func (s *search) nodeOK(qn rdf.NodeID, dn rdf.NodeID) bool {
	t := s.q.Term(qn)
	if t.IsVar() {
		return true
	}
	return s.m.g.Term(dn) == t
}

func (s *search) edgeExists(from, to rdf.NodeID, label rdf.Term) bool {
	for _, eid := range s.m.g.Out(from) {
		de := s.m.g.Edge(eid)
		if de.To == to && labelOK(label, de.Label) {
			return true
		}
	}
	return false
}

func (s *search) emit(misses int) {
	subst := rdf.Substitution{}
	sub := rdf.NewGraph()
	matched := 0
	for _, qe := range s.order {
		from, okF := s.assign[qe.From]
		to, okT := s.assign[qe.To]
		if !okF || !okT {
			continue
		}
		for _, eid := range s.m.g.Out(from) {
			de := s.m.g.Edge(eid)
			if de.To == to && labelOK(qe.Label, de.Label) {
				sub.AddTriple(rdf.Triple{S: s.m.g.Term(from), P: de.Label, O: s.m.g.Term(to)})
				if qe.Label.IsVar() {
					subst[qe.Label.Value] = de.Label
				}
				matched++
				break
			}
		}
	}
	if matched == 0 {
		return // misses consumed everything; not a match
	}
	s.q.Nodes(func(qn rdf.NodeID) bool {
		if t := s.q.Term(qn); t.IsVar() {
			if dn, ok := s.assign[qn]; ok {
				subst[t.Value] = s.m.g.Term(dn)
			}
		}
		return true
	})
	// Deduplicate: different miss subsets can yield the same binding.
	key := fmt.Sprintf("%d|%s", misses, baselines.SubstKey(subst))
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.out = append(s.out, baselines.Match{Subst: subst, Graph: sub, Cost: float64(misses)})
}
