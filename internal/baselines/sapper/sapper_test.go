package sapper

import (
	"testing"

	"sama/internal/baselines"
	"sama/internal/rdf"
)

func TestSapperFindsExactFirst(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	matches, err := m.Query(baselines.FigureQ1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if matches[0].Cost != 0 {
		t.Errorf("best match cost = %v, want 0 (exact)", matches[0].Cost)
	}
	want := map[string]string{"v1": "A0056", "v2": "B1432", "v3": "PierceDickes"}
	for k, v := range want {
		if matches[0].Subst[k].Value != v {
			t.Errorf("?%s = %v, want %s", k, matches[0].Subst[k], v)
		}
	}
	// Ordered by misses.
	for i := 1; i < len(matches); i++ {
		if matches[i].Cost < matches[i-1].Cost {
			t.Errorf("matches out of cost order at %d", i)
		}
	}
}

func TestSapperFindsMoreThanExact(t *testing.T) {
	// With Δ > 0 SAPPER must return strictly more matches than the
	// exact matcher on an approximate query (the Figure 8 behaviour).
	g := baselines.Figure1Graph()
	m := New(g, Options{MaxMisses: 1})
	matches, err := m.Query(baselines.FigureQ1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, approx := 0, 0
	for _, ma := range matches {
		if ma.Cost == 0 {
			exact++
		} else {
			approx++
		}
	}
	if exact != 1 {
		t.Errorf("exact matches = %d, want 1", exact)
	}
	if approx == 0 {
		t.Error("no approximate matches with Δ=1")
	}
}

func TestSapperMissBudgetRespected(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{MaxMisses: 2})
	matches, err := m.Query(baselines.FigureQ1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ma := range matches {
		if ma.Cost > 2 {
			t.Errorf("match exceeds miss budget: %v", ma.Cost)
		}
		if ma.Graph.EdgeCount() == 0 {
			t.Error("match with no matched edge emitted")
		}
	}
}

func TestSapperNoExactAnswerStillMatches(t *testing.T) {
	// A query with one unsatisfiable edge: SAPPER absorbs it as a miss.
	g := baselines.Figure1Graph()
	m := New(g, Options{MaxMisses: 1})
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewVar("v3"), P: rdf.NewIRI("gender"), O: rdf.NewLiteral("Male")})
	q.AddTriple(rdf.Triple{S: rdf.NewVar("v3"), P: rdf.NewIRI("hasRole"), O: rdf.NewVar("r")})
	matches, err := m.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ma := range matches {
		if ma.Cost == 1 {
			found = true
		}
		if ma.Cost == 0 {
			t.Errorf("impossible exact match: %v", ma.Subst)
		}
	}
	if !found {
		t.Error("no 1-miss matches for partially unsatisfiable query")
	}
}

func TestSapperDeduplicates(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{MaxMisses: 2})
	matches, err := m.Query(baselines.FigureQ2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ma := range matches {
		key := baselines.SubstKey(ma.Subst)
		full := key + "|" + itoa(int(ma.Cost))
		if seen[full] {
			t.Errorf("duplicate match %s", full)
		}
		seen[full] = true
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

func TestSapperLimit(t *testing.T) {
	g := baselines.Figure1Graph()
	m := New(g, Options{})
	matches, err := m.Query(baselines.FigureQ1(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Errorf("limited matches = %d, want 3", len(matches))
	}
}

func TestSapperEmptyQuery(t *testing.T) {
	m := New(baselines.Figure1Graph(), Options{})
	if _, err := m.Query(rdf.NewQueryGraph(), 0); err == nil {
		t.Error("empty query accepted")
	}
	if m.Name() != "Sapper" {
		t.Error("name wrong")
	}
}

func TestSapperSingleEdgeQueryNeverAllMissed(t *testing.T) {
	// Δ ≥ |E(q)| would allow matching nothing at all; the matcher must
	// clamp so at least one edge matches.
	g := baselines.Figure1Graph()
	m := New(g, Options{MaxMisses: 10})
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI("gender"), O: rdf.NewLiteral("Male")})
	matches, err := m.Query(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Errorf("matches = %d, want the 4 male nodes", len(matches))
	}
	for _, ma := range matches {
		if ma.Cost != 0 {
			t.Errorf("single-edge match with misses: %v", ma.Cost)
		}
	}
}
