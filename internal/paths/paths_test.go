package paths

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"sama/internal/rdf"
)

func iri(s string) rdf.Term          { return rdf.NewIRI(s) }
func lit(s string) rdf.Term          { return rdf.NewLiteral(s) }
func vr(s string) rdf.Term           { return rdf.NewVar(s) }
func tr(s, p, o rdf.Term) rdf.Triple { return rdf.Triple{S: s, P: p, O: o} }

// figure1Graph builds the full GovTrack data graph of the paper's
// Figure 1(a) (modulo node spelling).
func figure1Graph() *rdf.Graph {
	g := rdf.NewGraph()
	add := func(s, p, o rdf.Term) { g.AddTriple(tr(s, p, o)) }
	// Sponsors of amendments.
	add(iri("CarlaBunes"), iri("sponsor"), iri("A0056"))
	add(iri("JeffRyser"), iri("sponsor"), iri("A1589"))
	add(iri("KeithFarmer"), iri("sponsor"), iri("A1232"))
	add(iri("JohnMcRie"), iri("sponsor"), iri("A0772"))
	add(iri("JohnMcRie"), iri("sponsor"), iri("A1232"))
	add(iri("PierceDickes"), iri("sponsor"), iri("A0467"))
	// Amendments to bills.
	add(iri("A0056"), iri("aTo"), iri("B1432"))
	add(iri("A1589"), iri("aTo"), iri("B0532"))
	add(iri("A1232"), iri("aTo"), iri("B0045"))
	add(iri("A0772"), iri("aTo"), iri("B0045"))
	add(iri("A0467"), iri("aTo"), iri("B0532"))
	// Bills sponsored directly.
	add(iri("JeffRyser"), iri("sponsor"), iri("B0045"))
	add(iri("PeterTraves"), iri("sponsor"), iri("B0532"))
	add(iri("AliceNimber"), iri("sponsor"), iri("B1432"))
	add(iri("PierceDickes"), iri("sponsor"), iri("B1432"))
	// Subjects.
	add(iri("B1432"), iri("subject"), lit("Health Care"))
	add(iri("B0532"), iri("subject"), lit("Health Care"))
	add(iri("B0045"), iri("subject"), lit("Health Care"))
	// Genders.
	add(iri("JeffRyser"), iri("gender"), lit("Male"))
	add(iri("KeithFarmer"), iri("gender"), lit("Male"))
	add(iri("JohnMcRie"), iri("gender"), lit("Male"))
	add(iri("PierceDickes"), iri("gender"), lit("Male"))
	add(iri("CarlaBunes"), iri("gender"), lit("Female"))
	add(iri("AliceNimber"), iri("gender"), lit("Female"))
	return g
}

func queryQ1() *rdf.QueryGraph {
	q := rdf.NewQueryGraph()
	q.AddTriple(tr(iri("CarlaBunes"), iri("sponsor"), vr("v1")))
	q.AddTriple(tr(vr("v1"), iri("aTo"), vr("v2")))
	q.AddTriple(tr(vr("v2"), iri("subject"), lit("Health Care")))
	q.AddTriple(tr(vr("v3"), iri("sponsor"), vr("v2")))
	q.AddTriple(tr(vr("v3"), iri("gender"), lit("Male")))
	return q
}

func TestPathString(t *testing.T) {
	p := Path{
		Nodes: []rdf.Term{iri("JeffRyser"), iri("A1589"), iri("B0532"), lit("Health Care")},
		Edges: []rdf.Term{iri("sponsor"), iri("aTo"), iri("subject")},
	}
	want := "JeffRyser-sponsor-A1589-aTo-B0532-subject-Health Care"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if p.Length() != 4 {
		t.Errorf("Length = %d, want 4", p.Length())
	}
	if p.Position(iri("A1589")) != 2 {
		t.Errorf("Position(A1589) = %d, want 2", p.Position(iri("A1589")))
	}
	if p.Position(iri("missing")) != 0 {
		t.Error("missing label should have position 0")
	}
	if p.Source() != iri("JeffRyser") || p.Sink() != lit("Health Care") {
		t.Error("Source/Sink wrong")
	}
}

func TestPathKeyDistinguishesKinds(t *testing.T) {
	a := Path{Nodes: []rdf.Term{iri("x"), lit("y")}, Edges: []rdf.Term{iri("p")}}
	b := Path{Nodes: []rdf.Term{iri("x"), iri("y")}, Edges: []rdf.Term{iri("p")}}
	if a.Key() == b.Key() {
		t.Error("keys should differ for literal vs IRI node")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone key differs")
	}
}

func TestPathTriples(t *testing.T) {
	p := Path{
		Nodes: []rdf.Term{iri("a"), iri("b"), lit("c")},
		Edges: []rdf.Term{iri("p"), iri("q")},
	}
	want := []rdf.Triple{tr(iri("a"), iri("p"), iri("b")), tr(iri("b"), iri("q"), lit("c"))}
	if got := p.Triples(); !reflect.DeepEqual(got, want) {
		t.Errorf("Triples = %v", got)
	}
}

func TestEnumerateFigure1(t *testing.T) {
	g := figure1Graph()
	ps := Enumerate(g, Config{Concurrency: 2})
	// Every enumerated path must start at a source and end at a sink.
	srcs := map[rdf.Term]bool{}
	for _, s := range g.Sources() {
		srcs[g.Term(s)] = true
	}
	sinks := map[rdf.Term]bool{}
	for _, s := range g.Sinks() {
		sinks[g.Term(s)] = true
	}
	for _, p := range ps {
		if !srcs[p.Source()] {
			t.Errorf("path %s starts at non-source", p)
		}
		if !sinks[p.Sink()] {
			t.Errorf("path %s ends at non-sink", p)
		}
	}
	// The paper's example path pz must be present.
	found := false
	for _, p := range ps {
		if p.String() == "JeffRyser-sponsor-A1589-aTo-B0532-subject-Health Care" {
			found = true
		}
	}
	if !found {
		t.Error("pz path not enumerated")
	}
	// Deterministic across runs and concurrency levels.
	ps2 := Enumerate(g, Config{Concurrency: 7})
	if len(ps) != len(ps2) {
		t.Fatalf("lengths differ across concurrency: %d vs %d", len(ps), len(ps2))
	}
	for i := range ps {
		if ps[i].Key() != ps2[i].Key() {
			t.Errorf("path %d differs across concurrency", i)
		}
	}
}

func TestEnumerateNoPrefixEmission(t *testing.T) {
	// a -> b -> c and nothing else: the only path is a-b-c, not a-b.
	g := rdf.NewGraph()
	g.AddTriple(tr(iri("a"), iri("p"), iri("b")))
	g.AddTriple(tr(iri("b"), iri("p"), iri("c")))
	ps := Enumerate(g, Config{})
	if len(ps) != 1 {
		t.Fatalf("paths = %d, want 1: %v", len(ps), ps)
	}
	if ps[0].String() != "a-p-b-p-c" {
		t.Errorf("path = %s", ps[0])
	}
}

func TestEnumerateBranching(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d: two paths a-b-d and a-c-d.
	g := rdf.NewGraph()
	g.AddTriple(tr(iri("a"), iri("p"), iri("b")))
	g.AddTriple(tr(iri("a"), iri("p"), iri("c")))
	g.AddTriple(tr(iri("b"), iri("p"), iri("d")))
	g.AddTriple(tr(iri("c"), iri("p"), iri("d")))
	ps := Enumerate(g, Config{})
	var got []string
	for _, p := range ps {
		got = append(got, p.String())
	}
	sort.Strings(got)
	want := []string{"a-p-b-p-d", "a-p-c-p-d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("paths = %v, want %v", got, want)
	}
}

func TestEnumerateCycleBreaking(t *testing.T) {
	// s -> a -> b -> a (cycle), b -> t.
	g := rdf.NewGraph()
	g.AddTriple(tr(iri("s"), iri("p"), iri("a")))
	g.AddTriple(tr(iri("a"), iri("p"), iri("b")))
	g.AddTriple(tr(iri("b"), iri("p"), iri("a")))
	g.AddTriple(tr(iri("b"), iri("q"), iri("t")))
	ps := Enumerate(g, Config{})
	var got []string
	for _, p := range ps {
		got = append(got, p.String())
	}
	sort.Strings(got)
	// The b->a edge revisits a, so it is cut; only s-a-b-t survives.
	want := []string{"s-p-a-p-b-q-t"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("paths = %v, want %v", got, want)
	}
}

func TestEnumerateCycleOnlyGraphUsesHubs(t *testing.T) {
	g := rdf.NewGraph()
	g.AddTriple(tr(iri("a"), iri("p"), iri("b")))
	g.AddTriple(tr(iri("b"), iri("p"), iri("c")))
	g.AddTriple(tr(iri("c"), iri("p"), iri("a")))
	ps := Enumerate(g, Config{})
	if len(ps) != 3 {
		t.Fatalf("paths = %d, want 3 (one per hub)", len(ps))
	}
	for _, p := range ps {
		if p.Length() != 3 {
			t.Errorf("cycle path %s length = %d, want 3", p, p.Length())
		}
	}
}

func TestEnumerateBudgets(t *testing.T) {
	g := figure1Graph()
	if got := Enumerate(g, Config{MaxTotal: 3}); len(got) != 3 {
		t.Errorf("MaxTotal: got %d", len(got))
	}
	all := Enumerate(g, Config{})
	maxLen := 0
	for _, p := range all {
		if p.Length() > maxLen {
			maxLen = p.Length()
		}
	}
	if maxLen != 4 {
		t.Errorf("unbounded max length = %d, want 4", maxLen)
	}
	short := Enumerate(g, Config{MaxLength: 2})
	if len(short) == 0 {
		t.Fatal("MaxLength=2 returned nothing")
	}
	for _, p := range short {
		if p.Length() > 2 {
			t.Errorf("path %s exceeds MaxLength", p)
		}
	}
	one := Enumerate(g, Config{MaxPerRoot: 1})
	if len(one) != len(g.Sources()) {
		t.Errorf("MaxPerRoot=1: got %d paths for %d sources", len(one), len(g.Sources()))
	}
}

func TestDecomposeQ1(t *testing.T) {
	ps := Decompose(queryQ1())
	var got []string
	for _, p := range ps {
		got = append(got, p.String())
	}
	sort.Strings(got)
	want := []string{
		"?v3-gender-Male",
		"?v3-sponsor-?v2-subject-Health Care",
		"CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PQ = %v\nwant %v", got, want)
	}
}

func TestCommonNodes(t *testing.T) {
	q1 := Path{Nodes: []rdf.Term{iri("CB"), vr("v1"), vr("v2"), lit("Health Care")},
		Edges: []rdf.Term{iri("sponsor"), iri("aTo"), iri("subject")}}
	q2 := Path{Nodes: []rdf.Term{vr("v3"), vr("v2"), lit("Health Care")},
		Edges: []rdf.Term{iri("sponsor"), iri("subject")}}
	q3 := Path{Nodes: []rdf.Term{vr("v3"), lit("Male")}, Edges: []rdf.Term{iri("gender")}}
	// χ(q1,q2) = {?v2, Health Care} (paper §5).
	if got := CommonNodes(q1, q2); len(got) != 2 {
		t.Errorf("χ(q1,q2) = %v, want 2 nodes", got)
	}
	// χ(q2,q3) = {?v3}.
	if got := CommonNodes(q2, q3); len(got) != 1 || got[0] != vr("v3") {
		t.Errorf("χ(q2,q3) = %v", got)
	}
	// χ(q1,q3) = ∅.
	if got := CommonNodes(q1, q3); len(got) != 0 {
		t.Errorf("χ(q1,q3) = %v, want empty", got)
	}
	if !Intersects(q1, q2) || Intersects(q1, q3) {
		t.Error("Intersects wrong")
	}
}

func TestCommonNodesProperties(t *testing.T) {
	mk := func(ids []uint8) Path {
		names := []string{"a", "b", "c", "d", "e", "f"}
		p := Path{}
		for i, id := range ids {
			p.Nodes = append(p.Nodes, iri(names[id%6]))
			if i > 0 {
				p.Edges = append(p.Edges, iri("p"))
			}
		}
		if len(p.Nodes) == 0 {
			p.Nodes = []rdf.Term{iri("a")}
		}
		return p
	}
	// Property: |χ(a,b)| == |χ(b,a)| and χ(a,a) has all distinct labels.
	f := func(x, y []uint8) bool {
		a, b := mk(x), mk(y)
		if len(CommonNodes(a, b)) != len(CommonNodes(b, a)) {
			return false
		}
		distinct := map[rdf.Term]struct{}{}
		for _, n := range a.Nodes {
			distinct[n] = struct{}{}
		}
		return len(CommonNodes(a, a)) == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFirstConstantFromEnd(t *testing.T) {
	p := Path{Nodes: []rdf.Term{iri("CB"), vr("v1"), vr("v2")}, Edges: []rdf.Term{iri("a"), iri("b")}}
	c, ok := p.FirstConstantFromEnd()
	if !ok || c != iri("CB") {
		t.Errorf("FirstConstantFromEnd = %v, %v", c, ok)
	}
	allVars := Path{Nodes: []rdf.Term{vr("x"), vr("y")}, Edges: []rdf.Term{iri("p")}}
	if _, ok := allVars.FirstConstantFromEnd(); ok {
		t.Error("all-variable path should report no constant")
	}
}

func TestContainsLabelText(t *testing.T) {
	p := Path{Nodes: []rdf.Term{iri("a"), lit("Male")}, Edges: []rdf.Term{iri("gender")}}
	if !p.ContainsLabelText("gender") || !p.ContainsLabelText("Male") || p.ContainsLabelText("nope") {
		t.Error("ContainsLabelText wrong")
	}
}

func TestDedup(t *testing.T) {
	p := Path{Nodes: []rdf.Term{iri("a"), iri("b")}, Edges: []rdf.Term{iri("p")}}
	q := Path{Nodes: []rdf.Term{iri("a"), iri("c")}, Edges: []rdf.Term{iri("p")}}
	out := Dedup([]Path{p, q, p.Clone()})
	if len(out) != 2 {
		t.Errorf("Dedup kept %d, want 2", len(out))
	}
}

func TestSortByLength(t *testing.T) {
	short := Path{Nodes: []rdf.Term{iri("a"), iri("b")}, Edges: []rdf.Term{iri("p")}}
	long := Path{Nodes: []rdf.Term{iri("a"), iri("b"), iri("c")}, Edges: []rdf.Term{iri("p"), iri("p")}}
	ps := []Path{short, long}
	SortByLength(ps)
	if ps[0].Length() != 3 {
		t.Error("SortByLength should put longest first")
	}
}
