package paths

import (
	"runtime"
	"sort"
	"sync"

	"sama/internal/rdf"
)

// Config bounds the path enumeration. Real RDF graphs can contain an
// exponential number of source-to-sink paths, so production indexing
// needs explicit budgets; the zero value means “no bound” for each field
// except Concurrency, which defaults to GOMAXPROCS.
type Config struct {
	// MaxLength bounds the number of nodes per path (0 = unbounded).
	MaxLength int
	// MaxPerRoot bounds the number of paths enumerated from each
	// source/hub (0 = unbounded).
	MaxPerRoot int
	// MaxTotal bounds the total number of paths returned (0 = unbounded).
	MaxTotal int
	// Concurrency is the number of worker goroutines used to traverse
	// from the roots concurrently (the paper's “independently concurrent
	// traversals started from each source”). 0 means GOMAXPROCS.
	Concurrency int
}

// DefaultConfig is the budget used by the indexer: it keeps path counts
// proportional to the Table 1 |HE|/triples ratios on the benchmark
// generators.
var DefaultConfig = Config{MaxLength: 12, MaxPerRoot: 4096, Concurrency: 0}

func (c Config) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// Graph is the read-only view of a graph the enumerator needs. Both
// *rdf.Graph and *rdf.QueryGraph satisfy it.
type Graph interface {
	NodeCount() int
	Term(rdf.NodeID) rdf.Term
	Out(rdf.NodeID) []rdf.EdgeID
	Edge(rdf.EdgeID) rdf.Edge
	PathRoots() []rdf.NodeID
}

// Enumerate returns every source-to-sink path of g within the budgets of
// cfg, traversing from all path roots (sources, or hubs when the graph is
// sourceless, §3.2). The result is deterministic: paths are grouped by
// root in root-ID order, and within one root follow edge insertion order.
func Enumerate(g Graph, cfg Config) []Path {
	roots := g.PathRoots()
	if len(roots) == 0 {
		return nil
	}
	perRoot := make([][]Path, len(roots))
	workers := cfg.concurrency()
	if workers > len(roots) {
		workers = len(roots)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perRoot[i] = EnumerateFrom(g, roots[i], cfg)
			}
		}()
	}
	for i := range roots {
		next <- i
	}
	close(next)
	wg.Wait()

	var total int
	for _, ps := range perRoot {
		total += len(ps)
	}
	out := make([]Path, 0, total)
	for _, ps := range perRoot {
		out = append(out, ps...)
		if cfg.MaxTotal > 0 && len(out) >= cfg.MaxTotal {
			out = out[:cfg.MaxTotal]
			break
		}
	}
	return out
}

// EnumerateFrom returns the paths of g starting at root, in edge
// insertion order, within the cfg budgets. A path ends when it reaches a
// node with no outgoing edges, when extending it would revisit a node
// already on the path (cycle breaking), or when MaxLength is reached.
func EnumerateFrom(g Graph, root rdf.NodeID, cfg Config) []Path {
	type frame struct {
		node     rdf.NodeID
		edges    []rdf.EdgeID // remaining out-edges to try
		extended bool         // whether any child was pushed from here
	}
	var (
		out     []Path
		stack   []frame
		nodeIDs []rdf.NodeID
		edgeIDs []rdf.EdgeID
		onPath  = make(map[rdf.NodeID]struct{})
	)
	push := func(n rdf.NodeID) {
		stack = append(stack, frame{node: n, edges: g.Out(n)})
		nodeIDs = append(nodeIDs, n)
		onPath[n] = struct{}{}
	}
	emit := func() {
		p := Path{
			Nodes:   make([]rdf.Term, len(nodeIDs)),
			Edges:   make([]rdf.Term, len(edgeIDs)),
			NodeIDs: append([]rdf.NodeID(nil), nodeIDs...),
			EdgeIDs: append([]rdf.EdgeID(nil), edgeIDs...),
		}
		for i, id := range nodeIDs {
			p.Nodes[i] = g.Term(id)
		}
		for i, id := range edgeIDs {
			p.Edges[i] = g.Edge(id).Label
		}
		out = append(out, p)
	}
	push(root)
	for len(stack) > 0 {
		if cfg.MaxPerRoot > 0 && len(out) >= cfg.MaxPerRoot {
			break
		}
		top := &stack[len(stack)-1]
		// Find the next viable extension of the current path.
		var extended bool
		for len(top.edges) > 0 {
			eid := top.edges[0]
			top.edges = top.edges[1:]
			e := g.Edge(eid)
			if _, revisit := onPath[e.To]; revisit {
				continue // breaking a cycle truncates this branch
			}
			if cfg.MaxLength > 0 && len(nodeIDs) >= cfg.MaxLength {
				continue
			}
			edgeIDs = append(edgeIDs, eid)
			top.extended = true
			push(e.To)
			extended = true
			break
		}
		if extended {
			continue
		}
		// No extension left. If no child was ever pushed from this node,
		// the path ending here is maximal (a true sink, a cycle cut, or a
		// length cut): emit it, provided it contains at least one edge.
		if !top.extended && len(nodeIDs) > 1 {
			emit()
		}
		// Pop.
		delete(onPath, top.node)
		stack = stack[:len(stack)-1]
		nodeIDs = nodeIDs[:len(nodeIDs)-1]
		if len(edgeIDs) > 0 {
			edgeIDs = edgeIDs[:len(edgeIDs)-1]
		}
	}
	return out
}

// Decompose returns the paths PQ of a query graph Q (§5, Preprocessing):
// all paths from each source to any sink, unbudgeted except for cycle
// breaking. Queries are small, so no explosion control is needed.
func Decompose(q *rdf.QueryGraph) []Path {
	return Enumerate(q, Config{Concurrency: 1})
}

// Dedup removes duplicate paths (same Key), preserving first-occurrence
// order.
func Dedup(ps []Path) []Path {
	seen := make(map[string]struct{}, len(ps))
	out := ps[:0:0]
	for _, p := range ps {
		k := p.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, p)
	}
	return out
}

// SortByLength orders paths by decreasing length, breaking ties by Key;
// useful for deterministic test output.
func SortByLength(ps []Path) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Length() != ps[j].Length() {
			return ps[i].Length() > ps[j].Length()
		}
		return ps[i].Key() < ps[j].Key()
	})
}
