// Package paths implements the path decomposition of §3.2: a path is a
// sequence of labels from a source to a sink of a data or query graph
// (Definition 5). The package provides concurrent breadth-first path
// enumeration with explosion budgets, hub promotion for sourceless
// graphs, and the node-intersection primitive χ used by the conformity
// component of the similarity measure.
package paths

import (
	"strings"

	"sama/internal/rdf"
)

// Path is one source-to-sink path. Nodes holds the node labels in order,
// Edges the edge labels between them (len(Edges) == len(Nodes)-1). For
// paths extracted from a graph, NodeIDs and EdgeIDs carry the provenance
// of each element; paths built synthetically may leave them nil.
type Path struct {
	Nodes []rdf.Term
	Edges []rdf.Term

	NodeIDs []rdf.NodeID
	EdgeIDs []rdf.EdgeID
}

// Length returns the number of nodes in the path, matching the paper's
// convention (the example path JR-sponsor-A1589-aTo-B0532-subject-HC has
// length 4).
func (p Path) Length() int { return len(p.Nodes) }

// Source returns the first node label of the path.
func (p Path) Source() rdf.Term { return p.Nodes[0] }

// Sink returns the last node label of the path.
func (p Path) Sink() rdf.Term { return p.Nodes[len(p.Nodes)-1] }

// Position returns the 1-based position of the first node with the given
// label, or 0 if absent. (In the paper's example, A1589 has position 2.)
func (p Path) Position(label rdf.Term) int {
	for i, n := range p.Nodes {
		if n == label {
			return i + 1
		}
	}
	return 0
}

// ContainsNode reports whether the path contains a node with the label.
func (p Path) ContainsNode(label rdf.Term) bool { return p.Position(label) > 0 }

// ContainsLabelText reports whether any node or edge of the path has the
// given label text (Term.Label). Used by the clustering step when the
// query sink is a variable and matching falls back to the first constant.
func (p Path) ContainsLabelText(text string) bool {
	for _, n := range p.Nodes {
		if n.Label() == text {
			return true
		}
	}
	for _, e := range p.Edges {
		if e.Label() == text {
			return true
		}
	}
	return false
}

// String renders the path in the paper's “l1-e1-l2-…-lk” notation.
func (p Path) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteByte('-')
			b.WriteString(p.Edges[i-1].Label())
			b.WriteByte('-')
		}
		b.WriteString(n.Label())
	}
	return b.String()
}

// Key returns a canonical string identifying the path contents
// (including term kinds, so the literal "a" and the IRI <a> differ).
// Suitable as a map key for dedup.
func (p Path) Key() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			e := p.Edges[i-1]
			b.WriteByte(byte(e.Kind) + '0')
			b.WriteString(e.Label())
			b.WriteByte(0x1e)
		}
		b.WriteByte(byte(n.Kind) + '0')
		b.WriteString(n.Label())
		b.WriteByte(0x1f)
	}
	return b.String()
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return Path{
		Nodes:   append([]rdf.Term(nil), p.Nodes...),
		Edges:   append([]rdf.Term(nil), p.Edges...),
		NodeIDs: append([]rdf.NodeID(nil), p.NodeIDs...),
		EdgeIDs: append([]rdf.EdgeID(nil), p.EdgeIDs...),
	}
}

// Triples materialises the path back into its constituent statements.
// Synthetic paths without provenance are supported; the terms are used
// directly.
func (p Path) Triples() []rdf.Triple {
	ts := make([]rdf.Triple, 0, len(p.Edges))
	for i, e := range p.Edges {
		ts = append(ts, rdf.Triple{S: p.Nodes[i], P: e, O: p.Nodes[i+1]})
	}
	return ts
}

// smallPathNodes bounds the linear-scan fast path of CommonNodes and
// Intersects: when both paths have at most this many nodes, a nested
// scan beats building the membership map (no allocations, and real
// paths are short — the extractor's MaxLen defaults keep them well
// under this). The map path remains for longer synthetic paths.
const smallPathNodes = 8

// CommonNodes implements χ: the set of node labels shared by two paths,
// in first-path order. Variables are compared by name like any label.
func CommonNodes(a, b Path) []rdf.Term {
	if len(a.Nodes) <= smallPathNodes && len(b.Nodes) <= smallPathNodes {
		return commonNodesSmall(a, b)
	}
	inB := make(map[rdf.Term]struct{}, len(b.Nodes))
	for _, n := range b.Nodes {
		inB[n] = struct{}{}
	}
	var out []rdf.Term
	seen := make(map[rdf.Term]struct{})
	for _, n := range a.Nodes {
		if _, ok := inB[n]; ok {
			if _, dup := seen[n]; !dup {
				out = append(out, n)
				seen[n] = struct{}{}
			}
		}
	}
	return out
}

// commonNodesSmall is CommonNodes by nested linear scans: dedup by
// first occurrence within a, membership by scan of b. Output is
// element-for-element identical to the map path (first-path order,
// duplicates dropped); the only allocation is the result slice, and
// only when the intersection is non-empty.
func commonNodesSmall(a, b Path) []rdf.Term {
	var out []rdf.Term
	for i, n := range a.Nodes {
		dup := false
		for j := 0; j < i; j++ {
			if a.Nodes[j] == n {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for _, m := range b.Nodes {
			if m == n {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// Intersects reports whether two paths share at least one node label.
func Intersects(a, b Path) bool {
	if len(a.Nodes) <= smallPathNodes && len(b.Nodes) <= smallPathNodes {
		for _, n := range a.Nodes {
			for _, m := range b.Nodes {
				if m == n {
					return true
				}
			}
		}
		return false
	}
	inB := make(map[rdf.Term]struct{}, len(b.Nodes))
	for _, n := range b.Nodes {
		inB[n] = struct{}{}
	}
	for _, n := range a.Nodes {
		if _, ok := inB[n]; ok {
			return true
		}
	}
	return false
}

// FirstConstantFromEnd returns the last constant (non-variable) node
// label of the path scanning from the sink backwards, as used by the
// clustering step when the sink is a variable. ok is false when the path
// contains no constant node.
func (p Path) FirstConstantFromEnd() (rdf.Term, bool) {
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		if p.Nodes[i].IsConstant() {
			return p.Nodes[i], true
		}
	}
	return rdf.Term{}, false
}
