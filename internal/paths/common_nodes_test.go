package paths

import (
	"math/rand"
	"reflect"
	"testing"

	"sama/internal/rdf"
)

// commonNodesMap is the reference χ: the map-based implementation
// CommonNodes uses above smallPathNodes, restated here so the linear
// fast path can be diffed against it at every size.
func commonNodesMap(a, b Path) []rdf.Term {
	inB := make(map[rdf.Term]struct{}, len(b.Nodes))
	for _, n := range b.Nodes {
		inB[n] = struct{}{}
	}
	var out []rdf.Term
	seen := make(map[rdf.Term]struct{})
	for _, n := range a.Nodes {
		if _, ok := inB[n]; ok {
			if _, dup := seen[n]; !dup {
				out = append(out, n)
				seen[n] = struct{}{}
			}
		}
	}
	return out
}

// randomPath draws n nodes from a small pool of labels spanning all
// three term kinds, so duplicates within a path and same-label
// different-kind collisions across paths both occur.
func randomPath(rng *rand.Rand, n int) Path {
	pool := []rdf.Term{
		rdf.NewIRI("a"), rdf.NewIRI("b"), rdf.NewIRI("c"), rdf.NewIRI("d"),
		rdf.NewLiteral("a"), rdf.NewLiteral("x"),
		rdf.NewVar("v1"), rdf.NewVar("v2"), rdf.NewVar("a"),
	}
	p := Path{Nodes: make([]rdf.Term, n)}
	for i := range p.Nodes {
		p.Nodes[i] = pool[rng.Intn(len(pool))]
	}
	return p
}

// TestCommonNodesLinearEquivalence pins the small-path linear scan to
// the map implementation: identical elements in identical order, for
// every size combination straddling the smallPathNodes cutoff.
func TestCommonNodesLinearEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		na, nb := rng.Intn(smallPathNodes+4), rng.Intn(smallPathNodes+4)
		a, b := randomPath(rng, na), randomPath(rng, nb)
		got := CommonNodes(a, b)
		want := commonNodesMap(a, b)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: CommonNodes(%v, %v) = %v, map path gives %v",
				trial, a.Nodes, b.Nodes, got, want)
		}
	}
}

// TestCommonNodesSmallDirect exercises commonNodesSmall directly (the
// public entry point only routes to it under the cutoff) against the
// map path on sizes past the cutoff too.
func TestCommonNodesSmallDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		a, b := randomPath(rng, rng.Intn(14)), randomPath(rng, rng.Intn(14))
		got := commonNodesSmall(a, b)
		want := commonNodesMap(a, b)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: commonNodesSmall(%v, %v) = %v, want %v",
				trial, a.Nodes, b.Nodes, got, want)
		}
	}
}

// TestIntersectsMatchesCommonNodes pins Intersects to |χ| > 0 across
// the cutoff boundary.
func TestIntersectsMatchesCommonNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 2000; trial++ {
		a, b := randomPath(rng, rng.Intn(12)), randomPath(rng, rng.Intn(12))
		if got, want := Intersects(a, b), len(commonNodesMap(a, b)) > 0; got != want {
			t.Fatalf("trial %d: Intersects(%v, %v) = %t, want %t",
				trial, a.Nodes, b.Nodes, got, want)
		}
	}
}

// TestCommonNodesKindSensitivity guards the fast path against label-only
// comparison: an IRI and a literal with the same label must not match.
func TestCommonNodesKindSensitivity(t *testing.T) {
	a := Path{Nodes: []rdf.Term{rdf.NewIRI("a")}}
	b := Path{Nodes: []rdf.Term{rdf.NewLiteral("a")}}
	if got := CommonNodes(a, b); len(got) != 0 {
		t.Fatalf("IRI a vs literal a: got %v, want empty", got)
	}
	if Intersects(a, b) {
		t.Fatal("IRI a vs literal a: Intersects = true, want false")
	}
}
