package sama_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sama"
)

// obsTestDB builds a small database over the paper's Figure 1 data.
func obsTestDB(t *testing.T, opts ...sama.Option) *sama.DB {
	t.Helper()
	g := sama.NewGraph()
	add := func(s, p, o sama.Term) { g.AddTriple(sama.Triple{S: s, P: p, O: o}) }
	iri, lit := sama.NewIRI, sama.NewLiteral
	add(iri("CarlaBunes"), iri("sponsor"), iri("A0056"))
	add(iri("A0056"), iri("aTo"), iri("B1432"))
	add(iri("B1432"), iri("subject"), lit("Health Care"))
	add(iri("PierceDickes"), iri("sponsor"), iri("B1432"))
	add(iri("PierceDickes"), iri("gender"), lit("Male"))
	add(iri("JeffRyser"), iri("gender"), lit("Male"))
	add(iri("JeffRyser"), iri("sponsor"), iri("B0045"))
	add(iri("B0045"), iri("subject"), lit("Health Care"))
	db, err := sama.Create(t.TempDir()+"/idx", g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

const obsTestQuery = `SELECT ?x ?y WHERE { ?x <sponsor> ?y . ?x <gender> "Male" }`

// TestObservabilityEndToEnd is the acceptance check: a query through
// the public API produces a span tree whose phase durations sum (within
// slack) to the QueryStats total, and the debug server exposes
// parseable Prometheus text with the query-latency histogram, pool
// hit/miss counters and stop-reason counters.
func TestObservabilityEndToEnd(t *testing.T) {
	db := obsTestDB(t)
	res, err := db.QuerySPARQL(obsTestQuery, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}

	tr := res.Stats.Trace
	if tr == nil {
		t.Fatal("no trace on QueryStats")
	}
	var sum time.Duration
	seen := map[string]bool{}
	for _, s := range tr.Phases {
		seen[s.Name] = true
		sum += s.Duration
	}
	for _, want := range []string{"decompose", "cluster", "search", "assemble"} {
		if !seen[want] {
			t.Errorf("missing phase %q", want)
		}
	}
	if sum <= 0 || sum > res.Stats.Elapsed {
		t.Errorf("phase sum %v outside (0, total %v]", sum, res.Stats.Elapsed)
	}
	if slack := res.Stats.Elapsed - sum; slack > res.Stats.Elapsed/5+5*time.Millisecond {
		t.Errorf("phase sum %v far below total %v", sum, res.Stats.Elapsed)
	}

	// One partial query so the stop-reason counter family has a series.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	if _, err := db.QuerySPARQLContext(ctx, obsTestQuery, 5); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()
	body := httpGet(t, srv.Client(), srv.URL+"/metrics")
	checkPrometheusText(t, body)
	samples := parseSamples(t, body)
	if v := samples[`sama_queries_total`]; v != 2 {
		t.Errorf("sama_queries_total = %v, want 2", v)
	}
	if v := samples[`sama_query_stop_total{reason="deadline exceeded"}`]; v != 1 {
		t.Errorf("stop counter = %v, want 1", v)
	}
	if v := samples[`sama_query_partial_total`]; v != 1 {
		t.Errorf("partial counter = %v, want 1", v)
	}
	if _, ok := samples[`sama_query_seconds_bucket{le="+Inf"}`]; !ok {
		t.Error("query latency histogram missing")
	}
	if samples[`sama_query_seconds_count`] != 2 {
		t.Errorf("latency count = %v, want 2", samples[`sama_query_seconds_count`])
	}
	hits, haveHits := samples[`sama_pool_hits_total`]
	misses, haveMisses := samples[`sama_pool_misses_total`]
	if !haveHits || !haveMisses {
		t.Error("pool hit/miss counters missing")
	}
	want := db.PoolStats()
	if uint64(hits) != want.Hits || uint64(misses) != want.Misses {
		t.Errorf("pool counters: scrape (%v, %v) != PoolStats (%d, %d)",
			hits, misses, want.Hits, want.Misses)
	}
	if samples[`sama_index_paths`] <= 0 {
		t.Error("index path gauge missing or zero")
	}

	// /debug/lastqueries: both traces, newest first, JSON-decodable.
	var traces []*sama.Trace
	if err := json.Unmarshal([]byte(httpGet(t, srv.Client(), srv.URL+"/debug/lastqueries")), &traces); err != nil {
		t.Fatalf("lastqueries: %v", err)
	}
	if len(traces) != 2 {
		t.Fatalf("lastqueries = %d traces, want 2", len(traces))
	}
	if !traces[0].Partial || traces[1].Partial {
		t.Error("lastqueries order wrong (newest first expected)")
	}
	if !strings.Contains(traces[0].Query, "SELECT") {
		t.Errorf("trace query description = %q", traces[0].Query)
	}

	// pprof is mounted.
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil || resp.StatusCode != 200 {
		t.Errorf("pprof index: %v (%v)", err, resp)
	}
	if resp != nil {
		resp.Body.Close()
	}
}

// TestServeDebugListens exercises the real listener path of ServeDebug.
func TestServeDebugListens(t *testing.T) {
	db := obsTestDB(t)
	srv, err := db.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := httpGet(t, http.DefaultClient, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(body, "sama_pool_hits_total") {
		t.Errorf("metrics body missing pool counters:\n%.300s", body)
	}
}

// TestSlowQueryLogOption checks the public slow-query hook option.
func TestSlowQueryLogOption(t *testing.T) {
	var mu sync.Mutex
	var got []*sama.Trace
	db := obsTestDB(t, sama.WithSlowQueryLog(time.Nanosecond, func(tr *sama.Trace) {
		mu.Lock()
		got = append(got, tr)
		mu.Unlock()
	}))
	if _, err := db.QuerySPARQL(obsTestQuery, 3); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("slow-query hook fired %d times, want 1", len(got))
	}
	if got[0].Total <= 0 {
		t.Error("hook saw an unfinished trace")
	}
}

// TestQueryLogSizeOption checks the ring capacity option.
func TestQueryLogSizeOption(t *testing.T) {
	db := obsTestDB(t, sama.WithQueryLogSize(2))
	for i := 0; i < 5; i++ {
		if _, err := db.QuerySPARQL(obsTestQuery, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.LastQueries()); got != 2 {
		t.Errorf("LastQueries = %d traces, want 2", got)
	}
}

// TestPoolStatsDuringConcurrentQueries snapshots PoolStats and scrapes
// /metrics while queries run — the -race guard for the atomic pool
// counters satellite.
func TestPoolStatsDuringConcurrentQueries(t *testing.T) {
	db := obsTestDB(t)
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := db.PoolStats()
				_ = st.HitRate()
				httpGet(t, srv.Client(), srv.URL+"/metrics")
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.QuerySPARQL(obsTestQuery, 3); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	st := db.PoolStats()
	if st.Hits+st.Misses == 0 {
		t.Error("no pool traffic recorded")
	}
}

func httpGet(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	return httpGetAccept(t, c, url, "")
}

// httpGetAccept is httpGet with an Accept header — used to scrape
// /metrics in the OpenMetrics format, which is where exemplars live.
func httpGetAccept(t *testing.T, c *http.Client, url, accept string) string {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b)
}

var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (-?(?:[0-9.e+-]+|\+Inf|NaN))$`)

// checkPrometheusText validates every line of a classic (0.0.4) text
// exposition: either a HELP/TYPE comment or a bare `name{labels} value`
// sample. The classic grammar allows nothing after the value but an
// integer timestamp — in particular no OpenMetrics exemplar suffix,
// which would abort a standard Prometheus scrape.
func checkPrometheusText(t *testing.T, body string) {
	t.Helper()
	if body == "" {
		t.Fatal("empty /metrics body")
	}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("line %d is not parseable Prometheus text: %q", i+1, line)
		}
	}
}

// parseSamples maps `name{labels}` → value for every sample line.
func parseSamples(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			if m[2] == "+Inf" {
				continue
			}
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[m[1]] = v
	}
	return out
}
