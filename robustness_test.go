package sama

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCloseIsIdempotent(t *testing.T) {
	db := newTestDB(t)
	if err := db.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
}

func TestOperationsAfterCloseReturnErrClosed(t *testing.T) {
	db := newTestDB(t)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QuerySPARQL(`SELECT ?x WHERE { ?x <gender> "Male" }`, 3); !errors.Is(err, ErrClosed) {
		t.Errorf("QuerySPARQL after Close: %v, want ErrClosed", err)
	}
	q, err := ParseSPARQL(`SELECT ?x WHERE { ?x <gender> "Male" }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q, 3); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close: %v, want ErrClosed", err)
	}
	if err := db.Insert([]Triple{{S: NewIRI("a"), P: NewIRI("b"), O: NewIRI("c")}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert after Close: %v, want ErrClosed", err)
	}
	if err := db.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close: %v, want ErrClosed", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close: %v, want ErrClosed", err)
	}
	if err := db.DropCache(); !errors.Is(err, ErrClosed) {
		t.Errorf("DropCache after Close: %v, want ErrClosed", err)
	}
}

func TestQueryContextPanicRecovered(t *testing.T) {
	db := newTestDB(t)
	// A nil query graph panics inside the engine; the public API must
	// return it as an error, not crash the caller.
	_, _, err := db.QueryContext(context.Background(), nil, 3)
	if err == nil {
		t.Fatal("expected an error from a nil query graph")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error %q does not mention the recovered panic", err)
	}
}

// largeSyntheticDB builds an index whose clusters are big enough that
// an unbounded top-k search takes well over a millisecond.
func largeSyntheticDB(t *testing.T) *DB {
	t.Helper()
	g := NewGraph()
	add := func(s, p, o Term) { g.AddTriple(Triple{S: s, P: p, O: o}) }
	const n = 400
	for i := 0; i < n; i++ {
		x := NewIRI(fmt.Sprintf("person%d", i))
		a := NewIRI(fmt.Sprintf("amendment%d", i))
		b := NewIRI(fmt.Sprintf("bill%d", i%17))
		add(x, NewIRI("sponsor"), a)
		add(a, NewIRI("aTo"), b)
		add(b, NewIRI("subject"), NewLiteral("Health Care"))
		add(x, NewIRI("gender"), NewLiteral("Male"))
	}
	db, err := Create(filepath.Join(t.TempDir(), "large"), g,
		WithSearchBudget(0, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

const bigQuery = `SELECT ?x WHERE {
	?x <sponsor> ?v1 .
	?v1 <aTo> ?v2 .
	?v2 <subject> "Health Care" .
	?v3 <sponsor> ?v1 .
	?v3 <gender> "Male"
}`

func TestDeadlineQueryReturnsQuicklyWithSortedPrefix(t *testing.T) {
	db := largeSyntheticDB(t)

	// Sanity: without a deadline the query completes and is not partial.
	full, err := db.QuerySPARQL(bigQuery, 25)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("unbounded query reported Partial")
	}

	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := db.QuerySPARQLContext(ctx, bigQuery, 25)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline query errored: %v", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("1ms-deadline query took %v, want under 100ms", elapsed)
	}
	if !res.Partial {
		t.Error("Partial = false under a 1ms deadline, want true")
	}
	if res.StopReason != StopDeadline {
		t.Errorf("StopReason = %q, want %q", res.StopReason, StopDeadline)
	}
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i].Score < res.Answers[i-1].Score {
			t.Fatalf("partial answers out of order at %d: %.4f < %.4f",
				i, res.Answers[i].Score, res.Answers[i-1].Score)
		}
	}
	// The partial prefix can only be as good as or worse than the full
	// run at every rank: the full run saw strictly more combinations.
	for i := range res.Answers {
		if i >= len(full.Answers) {
			break
		}
		if res.Answers[i].Score < full.Answers[i].Score-1e-9 {
			t.Errorf("partial[%d].Score=%.6f beats full[%d].Score=%.6f",
				i, res.Answers[i].Score, i, full.Answers[i].Score)
		}
	}
}

func TestConcurrentQueriesDuringInserts(t *testing.T) {
	db := newTestDB(t)
	const (
		queriers         = 6
		queriesPerWorker = 15
		insertBatches    = 10
	)
	var wg sync.WaitGroup
	errCh := make(chan error, queriers*queriesPerWorker+insertBatches)

	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesPerWorker; i++ {
				res, err := db.QuerySPARQL(`SELECT ?x WHERE { ?x <gender> "Male" }`, 5)
				if err != nil {
					errCh <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
				for j := 1; j < len(res.Answers); j++ {
					if res.Answers[j].Score < res.Answers[j-1].Score {
						errCh <- fmt.Errorf("worker %d query %d: unsorted answers", w, i)
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < insertBatches; b++ {
			s := NewIRI(fmt.Sprintf("NewPerson%d", b))
			ts := []Triple{
				{S: s, P: NewIRI("gender"), O: NewLiteral("Male")},
				{S: s, P: NewIRI("sponsor"), O: NewIRI(fmt.Sprintf("A%04d", 9000+b))},
			}
			if err := db.Insert(ts); err != nil {
				errCh <- fmt.Errorf("insert batch %d: %w", b, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
