package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer sheds the first shedFirst requests with 503 + Retry-After,
// then answers 200.
func shedServer(t *testing.T, shedFirst int32, retryAfter string) (*httptest.Server, *int32) {
	t.Helper()
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt32(&calls, 1)
		if n <= shedFirst {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(QueryResponse{
			Answers: []Answer{{Score: 1.5}},
			Vars:    []string{"x"},
		})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestQueryShedNoRetryByDefault(t *testing.T) {
	srv, calls := shedServer(t, 1, "0")
	c := New(srv.URL)
	_, err := c.Query(context.Background(), "SELECT * WHERE { ?s ?p ?o }", QueryOptions{})
	if !IsOverloaded(err) {
		t.Fatalf("err = %v, want a 503 StatusError", err)
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no implicit retry)", got)
	}
}

func TestQueryRetryShedRecovers(t *testing.T) {
	srv, calls := shedServer(t, 1, "0")
	c := New(srv.URL)
	c.RetryShed = true
	resp, err := c.Query(context.Background(), "SELECT * WHERE { ?s ?p ?o }", QueryOptions{})
	if err != nil {
		t.Fatalf("retried query: %v", err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Score != 1.5 {
		t.Fatalf("retried answers = %+v", resp.Answers)
	}
	if got := atomic.LoadInt32(calls); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

func TestQueryRetryShedHonorsRetryAfter(t *testing.T) {
	srv, _ := shedServer(t, 1, "1")
	c := New(srv.URL)
	c.RetryShed = true
	start := time.Now()
	if _, err := c.Query(context.Background(), "q", QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry fired after %v, want >= the 1s Retry-After hint", elapsed)
	}
}

func TestQueryRetryShedSingleBounded(t *testing.T) {
	// The server never recovers: exactly one retry, then the 503
	// surfaces.
	srv, calls := shedServer(t, 1<<30, "0")
	c := New(srv.URL)
	c.RetryShed = true
	_, err := c.Query(context.Background(), "q", QueryOptions{})
	if !IsOverloaded(err) {
		t.Fatalf("err = %v, want a 503 StatusError", err)
	}
	if got := atomic.LoadInt32(calls); got != 2 {
		t.Fatalf("server saw %d requests, want exactly 2 (one retry)", got)
	}
}

func TestQueryRetryShedStopsOnContext(t *testing.T) {
	srv, calls := shedServer(t, 1<<30, "2")
	c := New(srv.URL)
	c.RetryShed = true
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, "q", QueryOptions{})
	if !IsOverloaded(err) {
		t.Fatalf("err = %v, want the original 503", err)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Fatalf("backoff outlived the context: %v", elapsed)
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (context expired during backoff)", got)
	}
}
