// Package client is the Go client of the samad query server and the
// single Go definition of its wire format: the JSON documents exchanged
// on POST /query are declared here and reused verbatim by the server to
// encode its responses, so client and server cannot drift apart.
//
// The protocol is deliberately plain HTTP + JSON:
//
//	POST /query?k=10&timeout=2s     body: SPARQL text
//	  200 → QueryResponse
//	  400 → ErrorResponse (malformed query, bad parameters)
//	  503 → ErrorResponse + Retry-After (overload or draining)
//	GET  /healthz                   process liveness
//	GET  /readyz                    load-balancer readiness (503 while draining)
//	GET  /metrics                   Prometheus text exposition
//
// A zero http.Client works: the package only needs the standard
// library.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Answer is one ranked answer on the wire. Scores mirror the engine's
// score(a, Q) = Λ + Ψ decomposition; lower is more relevant.
type Answer struct {
	Score  float64 `json:"score"`
	Lambda float64 `json:"lambda"`
	Psi    float64 `json:"psi"`
	// Exact reports a Definition-3 exact answer (perfect alignments,
	// nothing missing, all forest edges solid).
	Exact bool `json:"exact,omitempty"`
	// Bindings maps each projected variable to its bound term, rendered
	// in N-Triples term syntax.
	Bindings map[string]string `json:"bindings,omitempty"`
	// Paths are the answer's data paths, human-readable.
	Paths []string `json:"paths,omitempty"`
}

// Phase is one engine phase timing from the query's trace.
type Phase struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// IOStats is the query's buffer-pool attribution.
type IOStats struct {
	PageReads   uint64 `json:"page_reads"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Retries     uint64 `json:"retries"`
	// BatchedPages counts pages touched through the engine's
	// page-locality batched reads (a subset of PageReads).
	BatchedPages uint64 `json:"batched_pages"`
}

// ExplainPlan is the deterministic explain plan returned when the
// request asked for one (?explain=1 / QueryOptions.Explain). Its JSON
// shape mirrors the engine's plan exactly — field for field, tag for
// tag — so the document a client receives is byte-identical to what
// `sama query -explain -json` prints locally for the same query.
type ExplainPlan struct {
	Version int    `json:"version"`
	Query   string `json:"query,omitempty"`
	// Source is "cache" when the answer cache served the query whole
	// (no retrieval, alignment, or search ran), else "engine".
	Source     string         `json:"source"`
	Answers    int            `json:"answers"`
	Partial    bool           `json:"partial,omitempty"`
	StopReason string         `json:"stop_reason,omitempty"`
	Restarts   int            `json:"restarts,omitempty"`
	Phases     []*ExplainNode `json:"phases"`
}

// ExplainNode is one span of the plan tree: its name and integer
// decision counters, without timings.
type ExplainNode struct {
	Name     string           `json:"name"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*ExplainNode   `json:"children,omitempty"`
}

// Stats carries the per-request execution statistics: end-to-end and
// queue-wait time measured by the server, plus the engine's per-phase
// breakdown.
type Stats struct {
	// ElapsedNS is the engine execution time; QueueNS the time spent
	// waiting for an execution slot before it.
	ElapsedNS  int64   `json:"elapsed_ns"`
	QueueNS    int64   `json:"queue_ns"`
	QueryPaths int     `json:"query_paths"`
	Extracted  int     `json:"extracted"`
	Phases     []Phase `json:"phases,omitempty"`
	IO         IOStats `json:"io"`
}

// QueryResponse is the 200 body of POST /query.
type QueryResponse struct {
	Answers []Answer `json:"answers"`
	Vars    []string `json:"vars"`
	// Partial reports that the per-request deadline (or a server drain)
	// stopped the search early: Answers is the best-so-far prefix, still
	// in non-decreasing score order.
	Partial    bool   `json:"partial,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	Stats      Stats  `json:"stats"`
	// Explain is the deterministic explain plan, present only when the
	// request set QueryOptions.Explain (?explain=1).
	Explain *ExplainPlan `json:"explain,omitempty"`
}

// ErrorResponse is the body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatusError is a non-200 server response surfaced as an error.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's error text.
	Message string
	// RetryAfter is the parsed Retry-After hint on 503 responses (0 when
	// absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("samad: %s (HTTP %d)", e.Message, e.Code)
}

// IsOverloaded reports whether err is a 503 shed/drain response — the
// caller should back off for err's RetryAfter and retry.
func IsOverloaded(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusServiceUnavailable
}

// QueryOptions tune one request. The zero value uses the server's
// defaults.
type QueryOptions struct {
	// K is the number of answers to return (0: server default).
	K int
	// Timeout is the requested query deadline; the server caps it at its
	// -max-timeout (0: server default).
	Timeout time.Duration
	// Explain asks the server for the execution's deterministic explain
	// plan in QueryResponse.Explain.
	Explain bool
}

// Client talks to one samad server.
type Client struct {
	base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// RetryShed opts Query into one bounded retry of shed requests:
	// on a 503 (overload or drain) the client sleeps for the server's
	// Retry-After hint — capped at RetryShedMaxWait, defaulting to
	// RetryShedDefaultWait when the server sent none — and reissues the
	// request once. A second 503 is returned as-is; the retry never
	// outlives ctx. Off by default: shedding exists to move load away
	// from a saturated server, so blind client-side retries must be a
	// deliberate choice.
	RetryShed bool
}

// Retry-After handling bounds for RetryShed.
const (
	// RetryShedDefaultWait is slept before the retry when the 503
	// carried no (or a zero) Retry-After hint.
	RetryShedDefaultWait = 50 * time.Millisecond
	// RetryShedMaxWait caps the honored Retry-After, so a pathological
	// hint cannot park the caller for minutes.
	RetryShedMaxWait = 5 * time.Second
)

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8094").
func New(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Query answers a SPARQL query. Non-200 responses come back as a
// *StatusError; a 200 with Partial set is not an error (the answers are
// the best found within the deadline). With RetryShed set, one 503 is
// absorbed by waiting out its Retry-After hint and retrying.
func (c *Client) Query(ctx context.Context, sparql string, opts QueryOptions) (*QueryResponse, error) {
	resp, err := c.doQuery(ctx, sparql, opts)
	if err == nil || !c.RetryShed || !IsOverloaded(err) {
		return resp, err
	}
	var se *StatusError
	errors.As(err, &se)
	wait := se.RetryAfter
	if wait <= 0 {
		wait = RetryShedDefaultWait
	}
	if wait > RetryShedMaxWait {
		wait = RetryShedMaxWait
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		// The caller's deadline beat the backoff; the shed response is
		// the more informative error.
		return nil, err
	case <-timer.C:
	}
	return c.doQuery(ctx, sparql, opts)
}

func (c *Client) doQuery(ctx context.Context, sparql string, opts QueryOptions) (*QueryResponse, error) {
	q := url.Values{}
	if opts.K > 0 {
		q.Set("k", strconv.Itoa(opts.K))
	}
	if opts.Timeout > 0 {
		q.Set("timeout", opts.Timeout.String())
	}
	if opts.Explain {
		q.Set("explain", "1")
	}
	u := c.base + "/query"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(sparql))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/sparql-query")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("samad: decoding response: %w", err)
	}
	return &out, nil
}

// decodeError turns a non-200 response into a *StatusError, preferring
// the JSON error body and falling back to raw text.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	se := &StatusError{Code: resp.StatusCode}
	var er ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		se.Message = er.Error
	} else {
		se.Message = strings.TrimSpace(string(body))
	}
	if se.Message == "" {
		se.Message = http.StatusText(resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// get fetches path and returns the body, mapping non-200 to *StatusError.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Healthz checks process liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz")
	return err
}

// Readyz checks readiness: nil while the server admits work, a
// *StatusError with code 503 while it drains.
func (c *Client) Readyz(ctx context.Context) error {
	_, err := c.get(ctx, "/readyz")
	return err
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	b, err := c.get(ctx, "/metrics")
	return string(b), err
}
