GO ?= go

.PHONY: check fmt vet build bins test race race-hot crash bench profile serve-smoke route-smoke

# check is the tier-1 gate: formatting, static analysis, a full build
# (packages and both binaries), the race-enabled test suite with an
# extra race pass over the concurrency-hot packages, the
# crash-recovery matrix, and the multi-node router smoke test. CI and
# pre-commit both run this.
check: fmt vet build bins race race-hot crash route-smoke

fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$files"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# bins links the two shipped binaries — the sama CLI and the samad
# network daemon — into bin/.
bins:
	$(GO) build -o bin/sama ./cmd/sama
	$(GO) build -o bin/samad ./cmd/samad

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot re-runs the packages where caching, epoch invalidation,
# request coalescing, WAL group commit, incremental compaction, the
# event ring's subscriber fan-out and the signature pre-rank's
# probe-mask lookups interleave — a second -count pass varies
# goroutine scheduling beyond what one ./... sweep exercises.
race-hot:
	$(GO) test -race -count=2 ./internal/cache ./internal/core ./internal/server ./internal/storage ./internal/index ./internal/obs ./internal/shard ./internal/textindex

# crash re-runs the durability suites on their own: the crash-matrix
# kill points (torn WAL tails, mid-checkpoint and mid-compaction
# kills), WAL recovery, and the compaction swap's crash window.
crash:
	$(GO) test -count=1 -run 'TestCrashMatrix|TestWAL|TestCompact|TestPageFileSync|TestInsertTriplesAllOrNothing' ./internal/storage ./internal/index

# bench is the smoke harness: one pass over every benchmark, with
# BenchmarkPhaseBreakdown running every query at least 5 times and
# writing per-phase p50/p99, the warm-cache hit ratio +
# cached-vs-uncached medians, and the sharded-engine sweep (cluster/
# search medians at 1/2/4 shards, merge overhead, per-shard fan-out
# p99) from the query traces to results/bench_latest.json.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .
	@echo "per-phase p50/p99 written to results/bench_latest.json"

# profile captures a CPU profile of the warm Fig. 7(a)-style query mix
# (BenchmarkSearchMix: Q2/Q4/Q10 over the shared LUBM instance) into
# results/, keeping the test binary next to it for symbolisation.
profile:
	@mkdir -p results
	$(GO) test -run '^$$' -bench 'BenchmarkSearchMix' -benchtime 20x \
		-cpuprofile results/cpu.pprof -o results/bench.test .
	@echo "inspect with: $(GO) tool pprof results/bench.test results/cpu.pprof"

# route-smoke boots the multi-node path end-to-end: a 3-shard layout,
# one samad per shard directory, a samad router fronting them, the
# Fig. 7 query mix through the merged top-k, and a shard kill that
# must degrade (partial response, named in the explain plan) rather
# than fail.
route-smoke:
	$(GO) test -count=1 -run 'TestRouterE2E' ./cmd/samad

# serve-smoke boots samad end-to-end: random port, example dataset
# indexed on the fly, one query through the Go client, /readyz and
# /metrics checked, graceful shutdown.
serve-smoke:
	$(GO) test -v -run 'TestServeSmoke' ./cmd/samad
