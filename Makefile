GO ?= go

.PHONY: check fmt vet build test race bench

# check is the tier-1 gate: formatting, static analysis, a full build,
# and the race-enabled test suite. CI and pre-commit both run this.
check: fmt vet build race

fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$files"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
