GO ?= go

.PHONY: check fmt vet build test race bench

# check is the tier-1 gate: formatting, static analysis, a full build,
# and the race-enabled test suite. CI and pre-commit both run this.
check: fmt vet build race

fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$files"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the smoke harness: one pass over every benchmark, with
# BenchmarkPhaseBreakdown writing per-phase medians from the query
# traces to results/bench_latest.json.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .
	@echo "phase medians written to results/bench_latest.json"
