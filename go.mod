module sama

go 1.22
