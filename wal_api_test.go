package sama

import (
	"errors"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestWALPublicAPI drives the durable write path through the public
// surface: Create with WithWAL, a durable insert, a simulated crash
// (the handle is abandoned without Close or Flush), then Open →
// NeedsRecovery → Recover → the acknowledged insert answers queries.
func TestWALPublicAPI(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "db")
	g, err := LoadNTriples(strings.NewReader(govtrackNT))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(base, g, WithWAL(filepath.Join(dir, "wal")), WithWALCheckpoint(-1))
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := db.WALStats(); !ok {
		t.Fatalf("WALStats: no WAL on a WithWAL database (%+v)", st)
	}
	if db.NeedsRecovery() != -1 {
		t.Fatalf("NeedsRecovery on a live database = %d, want -1", db.NeedsRecovery())
	}
	if err := db.Insert([]Triple{{
		S: NewIRI("NewSen"), P: NewIRI("sponsor"), O: NewIRI("A0056"),
	}}); err != nil {
		t.Fatal(err)
	}
	st, _ := db.WALStats()
	if st.Appends == 0 {
		t.Fatal("insert did not append to the WAL")
	}
	// Crash: no Close, no Flush — the insert lives only in the fsynced
	// log and the in-memory state we now abandon.

	re, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.NeedsRecovery(); n != 1 {
		t.Fatalf("NeedsRecovery after crash = %d, want 1", n)
	}
	// Writes are refused until the log is replayed.
	if err := re.Insert([]Triple{{
		S: NewIRI("x"), P: NewIRI("y"), O: NewIRI("z"),
	}}); err == nil {
		t.Fatal("insert on an unrecovered database succeeded")
	}
	// So are queries: with acknowledged batches pending, answering from
	// the flushed files alone would silently drop the durable insert.
	if _, err := re.QuerySPARQL(`SELECT ?x WHERE { ?x <sponsor> <A0056> }`, 10); !errors.Is(err, ErrNeedsRecovery) {
		t.Fatalf("query on an unrecovered database: err=%v, want ErrNeedsRecovery", err)
	}
	g2, err := LoadNTriples(strings.NewReader(govtrackNT))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := re.Recover(g2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records != 1 || rs.Triples != 1 {
		t.Fatalf("RecoveryStats = %+v, want 1 record / 1 triple", rs)
	}
	if re.NeedsRecovery() != -1 {
		t.Fatalf("NeedsRecovery after Recover = %d, want -1", re.NeedsRecovery())
	}
	res, err := re.QuerySPARQL(`SELECT ?x WHERE { ?x <sponsor> <A0056> }`, 10)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, a := range res.Answers {
		if b, ok := a.Bindings(res.Vars)["x"]; ok && b.Value == "NewSen" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered insert missing from answers: %v", res.Answers)
	}

	// Recovery is re-entrant for further writes, and checkpoints reclaim
	// the replayed prefix.
	if err := re.Insert([]Triple{{
		S: NewIRI("NewSen"), P: NewIRI("gender"), O: NewLiteral("Male"),
	}}); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
}

// TestWALObservability: the WAL counters surface in both /metrics and
// the /debug/vars sama_wal section.
func TestWALObservability(t *testing.T) {
	dir := t.TempDir()
	g, err := LoadNTriples(strings.NewReader(govtrackNT))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Create(filepath.Join(dir, "db"), g, WithWAL(filepath.Join(dir, "wal")))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Insert([]Triple{{
		S: NewIRI("NewSen"), P: NewIRI("sponsor"), O: NewIRI("A0056"),
	}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()
	for path, wants := range map[string][]string{
		"/metrics":    {"sama_wal_appends_total 1", "sama_wal_syncs_total", "sama_wal_segments 1"},
		"/debug/vars": {`"sama_wal"`, `"enabled":true`, `"needs_recovery":-1`},
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, want := range wants {
			if !strings.Contains(string(body), want) {
				t.Errorf("%s missing %q:\n%.2000s", path, want, body)
			}
		}
	}
}
