// Incremental: live index maintenance (the paper's §7 future-work
// items realised). Builds a compressed index, answers a query, inserts
// new statements without rebuilding, and shows the updated answers and
// the disk savings from dictionary compression.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sama"
)

const newsroom = `
<reuters>  <reports>  <story1> .
<story1>   <about>    "Elections" .
<ap>       <reports>  <story2> .
<story2>   <about>    "Economy" .
<afp>      <reports>  <story3> .
<story3>   <about>    "Elections" .
`

func main() {
	g, err := sama.LoadNTriples(strings.NewReader(newsroom))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "sama-incremental-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sama.Create(filepath.Join(dir, "index"), g, sama.WithCompression())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("indexed %d paths, %.1f KB on disk (dictionary-compressed)\n\n",
		db.Stats().Paths, float64(db.Stats().DiskBytes)/1024)

	query := `SELECT ?agency ?story WHERE {
		?agency <reports> ?story .
		?story <about> "Elections" .
	}`
	show(db, query, "before insert")

	// A new agency files an elections story: update the index in place.
	start := time.Now()
	err = db.Insert([]sama.Triple{
		{S: sama.NewIRI("dpa"), P: sama.NewIRI("reports"), O: sama.NewIRI("story4")},
		{S: sama.NewIRI("story4"), P: sama.NewIRI("about"), O: sama.NewLiteral("Elections")},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted 2 triples incrementally in %v (no rebuild)\n\n",
		time.Since(start).Round(time.Microsecond))

	show(db, query, "after insert")
}

func show(db *sama.DB, query, label string) {
	res, err := db.QuerySPARQL(query, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s: %d answers ---\n", label, len(res.Answers))
	for _, a := range res.Answers {
		if !a.Exact() {
			continue
		}
		fmt.Printf("  %s reports %s  (score %.2f)\n",
			a.Subst["agency"].Label(), a.Subst["story"].Label(), a.Score)
	}
	fmt.Println()
}
