// GovTrack: the paper's §1 running example end-to-end. Builds the
// Figure 1 data graph, runs Q1 (which has an exact answer) and Q2
// (which has none), and shows that approximate matching returns Q1's
// answer for Q2 — the paper's motivating claim.
//
//	go run ./examples/govtrack
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"sama"
)

// figure1 is the data graph Gd of the paper's Figure 1(a).
const figure1 = `
<CarlaBunes>   <sponsor> <A0056> .
<JeffRyser>    <sponsor> <A1589> .
<KeithFarmer>  <sponsor> <A1232> .
<JohnMcRie>    <sponsor> <A0772> .
<JohnMcRie>    <sponsor> <A1232> .
<PierceDickes> <sponsor> <A0467> .
<A0056> <aTo> <B1432> .
<A1589> <aTo> <B0532> .
<A1232> <aTo> <B0045> .
<A0772> <aTo> <B0045> .
<A0467> <aTo> <B0532> .
<JeffRyser>    <sponsor> <B0045> .
<PeterTraves>  <sponsor> <B0532> .
<AliceNimber>  <sponsor> <B1432> .
<PierceDickes> <sponsor> <B1432> .
<B1432> <subject> "Health Care" .
<B0532> <subject> "Health Care" .
<B0045> <subject> "Health Care" .
<JeffRyser>    <gender> "Male" .
<KeithFarmer>  <gender> "Male" .
<JohnMcRie>    <gender> "Male" .
<PierceDickes> <gender> "Male" .
<CarlaBunes>   <gender> "Female" .
<AliceNimber>  <gender> "Female" .
`

// q1 asks for amendments ?v1 sponsored by Carla Bunes to a bill ?v2 on
// Health Care originally sponsored by a male person ?v3.
const q1 = `SELECT ?v1 ?v2 ?v3 WHERE {
	<CarlaBunes> <sponsor> ?v1 .
	?v1 <aTo> ?v2 .
	?v2 <subject> "Health Care" .
	?v3 <sponsor> ?v2 .
	?v3 <gender> "Male" .
}`

// q2 is the relaxed query of Figure 1(c): no aTo hop, and the subject
// relation is the variable ?e1. There is no exact answer, yet the same
// best answer should be returned.
const q2 = `SELECT ?v2 ?v3 WHERE {
	?v3 <gender> "Male" .
	?v3 <sponsor> ?v2 .
	?v2 ?e1 "Health Care" .
}`

func main() {
	g, err := sama.LoadNTriples(strings.NewReader(figure1))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "sama-govtrack-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := sama.Create(filepath.Join(dir, "index"), g)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Println("=== Q1 (exact answer exists) ===")
	show(db, q1)
	fmt.Println("=== Q2 (no exact answer; approximate matching) ===")
	show(db, q2)
}

func show(db *sama.DB, query string) {
	res, err := db.QuerySPARQL(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range res.Answers {
		fmt.Printf("#%d  score %.2f = Λ %.2f + Ψ %.2f", i+1, a.Score, a.Lambda, a.Psi)
		if a.Exact() {
			fmt.Print("  [exact]")
		}
		fmt.Println()
		for _, v := range res.Vars {
			if t, ok := a.Subst[v]; ok {
				fmt.Printf("    ?%s = %s\n", v, t.Label())
			}
		}
		// The combination forest of Figure 4: solid edges conform
		// perfectly to the query's path intersections.
		for _, fe := range a.Forest() {
			kind := "solid"
			if !fe.Solid() {
				kind = "dashed"
			}
			fmt.Printf("    forest edge (%d,%d): degree %.2f (%s)\n",
				fe.From, fe.To, fe.Degree, kind)
		}
	}
	fmt.Println()
}
