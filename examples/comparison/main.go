// Comparison: the four systems of the paper's evaluation — Sama,
// SAPPER, Bounded and DOGMA — answering the same approximate query side
// by side, showing who finds what (the Figure 8 effect in miniature).
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sama/internal/baselines"
	"sama/internal/baselines/bounded"
	"sama/internal/baselines/dogma"
	"sama/internal/baselines/sapper"
	"sama/internal/datasets"
	"sama/internal/experiments"
	"sama/internal/rdf"
)

func main() {
	g := datasets.GovTrack{}.Generate(5_000, 3)
	fmt.Printf("GovTrack-shaped graph: %d triples, %d nodes\n\n", g.EdgeCount(), g.NodeCount())

	// An approximate query: amendments by a female sponsor to a bill
	// about Health Care that was "proposed" (not a predicate in the
	// data: the data uses sponsor) by someone male.
	ns := datasets.GovTrackNamespace
	q := rdf.NewQueryGraph()
	q.AddTriple(rdf.Triple{S: rdf.NewVar("a"), P: rdf.NewIRI(ns + "vocab/aTo"), O: rdf.NewVar("b")})
	q.AddTriple(rdf.Triple{S: rdf.NewVar("b"), P: rdf.NewIRI(ns + "vocab/subject"), O: rdf.NewLiteral("Health Care")})
	q.AddTriple(rdf.Triple{S: rdf.NewVar("p"), P: rdf.NewIRI(ns + "vocab/proposes"), O: rdf.NewVar("a")})
	q.AddTriple(rdf.Triple{S: rdf.NewVar("p"), P: rdf.NewIRI(ns + "vocab/gender"), O: rdf.NewLiteral("Female")})

	// Sama through the experiment harness (indexes on disk).
	dir, err := os.MkdirTemp("", "sama-comparison-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	samaSys, err := experiments.NewSamaSystem(dir, g)
	if err != nil {
		log.Fatal(err)
	}
	defer samaSys.Close()

	start := time.Now()
	answers, err := samaSys.Engine().Query(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %4d answers in %8s", "Sama", len(answers), time.Since(start).Round(time.Microsecond))
	if len(answers) > 0 {
		fmt.Printf("  best score %.2f (exact: %v)", answers[0].Score, answers[0].Exact())
	}
	fmt.Println()

	// The three baselines.
	matchers := []baselines.Matcher{
		sapper.New(g, sapper.Options{}),
		bounded.New(g, bounded.Options{}),
		dogma.New(g, dogma.Options{}),
	}
	for _, m := range matchers {
		mStart := time.Now()
		matches, err := m.Query(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %4d answers in %8s", m.Name(), len(matches), time.Since(mStart).Round(time.Microsecond))
		if len(matches) > 0 {
			fmt.Printf("  best cost %.0f", matches[0].Cost)
		}
		fmt.Println()
	}

	fmt.Println("\nThe exact matcher (Dogma) finds nothing: no 'proposes' edge exists.")
	fmt.Println("Sama aligns the paths approximately and still ranks the intended answers first.")
	if len(answers) > 0 {
		fmt.Println("\nSama's best answer:")
		fmt.Print(answers[0])
	}
}
