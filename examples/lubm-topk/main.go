// LUBM top-k: generate a LUBM-shaped graph, index it, and run the
// paper's 12-query workload end-to-end, printing top-10 answer counts
// and latencies — a miniature of the Figure 6/8 experiments against the
// public API.
//
//	go run ./examples/lubm-topk [-triples 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"sama"
	"sama/internal/datasets"
	"sama/internal/workload"
)

func main() {
	triples := flag.Int("triples", 20_000, "approximate LUBM size")
	flag.Parse()

	g := datasets.LUBM{}.Generate(*triples, 1)
	fmt.Printf("LUBM: %d triples, %d nodes\n", g.EdgeCount(), g.NodeCount())

	dir, err := os.MkdirTemp("", "sama-lubm-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	db, err := sama.Create(filepath.Join(dir, "index"), g,
		sama.WithThesaurus(sama.BenchmarkThesaurus()))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	st := db.Stats()
	fmt.Printf("indexed %d paths in %v (%.1f MB on disk)\n\n",
		st.Paths, time.Since(start).Round(time.Millisecond),
		float64(st.DiskBytes)/(1<<20))

	fmt.Printf("%-5s %-7s %-6s %9s %8s %9s\n",
		"query", "approx", "vars", "answers", "best", "time")
	for _, q := range workload.LUBMQueries() {
		qStart := time.Now()
		answers, err := db.Query(q.Pattern, 10)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(qStart)
		best := "-"
		if len(answers) > 0 {
			best = fmt.Sprintf("%.2f", answers[0].Score)
		}
		fmt.Printf("%-5s %-7v %-6d %9d %8s %9s\n",
			q.ID, q.Approximate, q.Vars, len(answers), best,
			elapsed.Round(time.Microsecond))
	}
}
