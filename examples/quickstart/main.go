// Quickstart: load a small RDF graph, index it on disk, and run one
// approximate SPARQL query with ranked answers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"sama"
)

const data = `
<alice>  <knows>   <bob> .
<alice>  <worksAt> <acme> .
<bob>    <worksAt> <acme> .
<bob>    <knows>   <carol> .
<carol>  <worksAt> <globex> .
<acme>   <locatedIn> "Rome" .
<globex> <locatedIn> "Milan" .
`

func main() {
	// Parse N-Triples into a data graph.
	g, err := sama.LoadNTriples(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples, %d nodes\n", g.EdgeCount(), g.NodeCount())

	// Build the disk-resident path index.
	dir, err := os.MkdirTemp("", "sama-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := sama.Create(filepath.Join(dir, "index"), g)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	st := db.Stats()
	fmt.Printf("indexed %d paths (|HV| %d, |HE| %d)\n\n", st.Paths, st.HV, st.HE)

	// Who works at a company located in Rome? Exact matches first.
	run(db, `SELECT ?who ?org WHERE {
		?who <worksAt> ?org .
		?org <locatedIn> "Rome" .
	}`)

	// Approximate: nobody "employedBy" anything in the data — the path
	// alignment still surfaces worksAt answers, with a penalty.
	run(db, `SELECT ?who ?org WHERE {
		?who <employedBy> ?org .
		?org <locatedIn> "Rome" .
	}`)
}

func run(db *sama.DB, query string) {
	fmt.Println("query:", strings.Join(strings.Fields(query), " "))
	res, err := db.QuerySPARQL(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range res.Answers {
		tag := ""
		if a.Exact() {
			tag = " [exact]"
		}
		fmt.Printf("  #%d score %.2f%s  ", i+1, a.Score, tag)
		for _, v := range res.Vars {
			if t, ok := a.Subst[v]; ok {
				fmt.Printf("?%s=%s ", v, t.Label())
			}
		}
		fmt.Println()
	}
	fmt.Println()
}
