// Command benchgen generates the benchmark datasets of the paper's
// evaluation as N-Triples files:
//
//	benchgen -dataset LUBM -triples 100000 -seed 1 -o lubm.nt
//
// Datasets: LUBM, GOV (GovTrack-shaped), Berlin (BSBM-shaped), PBlog
// (political blogosphere-shaped). Generation is deterministic in the
// seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sama"
	"sama/internal/datasets"
)

func main() {
	ds := flag.String("dataset", "LUBM", "dataset to generate (LUBM, GOV, Berlin, PBlog)")
	triples := flag.Int("triples", 100_000, "approximate number of triples")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available datasets and exit")
	flag.Parse()

	if *list {
		var names []string
		for _, g := range datasets.All() {
			names = append(names, g.Name())
		}
		fmt.Println(strings.Join(names, " "))
		return
	}

	gen, err := datasets.ByName(*ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	start := time.Now()
	g := gen.Generate(*triples, *seed)
	fmt.Fprintf(os.Stderr, "generated %d triples (%d nodes) in %v\n",
		g.EdgeCount(), g.NodeCount(), time.Since(start).Round(time.Millisecond))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := sama.WriteNTriples(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}
