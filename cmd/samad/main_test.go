package main

import (
	"bytes"
	"context"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sama"
	"sama/client"
)

const testData = `
<alice>  <knows>   <bob> .
<alice>  <worksAt> <acme> .
<bob>    <worksAt> <acme> .
<bob>    <knows>   <carol> .
<carol>  <worksAt> <globex> .
<acme>   <locatedIn> "Rome" .
<globex> <locatedIn> "Milan" .
`

const testQuery = `SELECT ?who ?org WHERE {
	?who <worksAt> ?org .
	?org <locatedIn> "Rome" .
}`

// writeDataset writes the test graph and returns (dataFile, indexBase).
func writeDataset(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	data := filepath.Join(dir, "graph.nt")
	if err := os.WriteFile(data, []byte(testData), 0o644); err != nil {
		t.Fatal(err)
	}
	return data, filepath.Join(dir, "index")
}

// TestServeSmoke is the `make serve-smoke` gate: start samad on a random
// port, build the index from an example dataset, run one query through
// the Go client, and check /readyz and /metrics.
func TestServeSmoke(t *testing.T) {
	data, index := writeDataset(t)
	var logs bytes.Buffer
	logger := log.New(&logs, "samad: ", 0)
	d, err := startDaemon([]string{
		"-index", index, "-data", data,
		"-addr", "127.0.0.1:0",
		"-max-inflight", "4",
	}, logger)
	if err != nil {
		t.Fatalf("startDaemon: %v\nlogs:\n%s", err, logs.String())
	}
	defer d.shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := client.New("http://" + d.srv.Addr())
	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("Readyz: %v", err)
	}

	resp, err := c.Query(ctx, testQuery, client.QueryOptions{K: 5, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("query returned no answers")
	}
	if got := resp.Answers[0].Bindings["who"]; !strings.Contains(got, "alice") && !strings.Contains(got, "bob") {
		t.Errorf("top binding ?who = %q, want alice or bob", got)
	}
	if len(resp.Vars) != 2 {
		t.Errorf("vars = %v", resp.Vars)
	}
	if len(resp.Stats.Phases) == 0 {
		t.Error("response carries no per-phase stats")
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"sama_server_request_seconds",
		"sama_server_admitted_total 1",
		"sama_server_inflight 0",
		"sama_query_seconds",
		"sama_pool_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The request's trace landed in the lastqueries ring.
	traces := d.db.LastQueries()
	if len(traces) != 1 || !strings.Contains(traces[0].Query, "worksAt") {
		t.Errorf("lastqueries ring = %+v, want the smoke query's trace", traces)
	}

	if err := d.shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := c.Healthz(context.Background()); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestReopenExistingIndex: a second start must open the index built by
// the first, not rebuild it.
func TestReopenExistingIndex(t *testing.T) {
	data, index := writeDataset(t)
	logger := log.New(new(bytes.Buffer), "", 0)
	d, err := startDaemon([]string{"-index", index, "-data", data, "-addr", "127.0.0.1:0"}, logger)
	if err != nil {
		t.Fatalf("first start: %v", err)
	}
	if err := d.shutdown(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	var logs bytes.Buffer
	d2, err := startDaemon([]string{"-index", index, "-addr", "127.0.0.1:0"}, log.New(&logs, "", 0))
	if err != nil {
		t.Fatalf("reopen without -data: %v", err)
	}
	defer d2.shutdown()
	if strings.Contains(logs.String(), "building") {
		t.Errorf("second start rebuilt the index:\n%s", logs.String())
	}
	c := client.New("http://" + d2.srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if resp, err := c.Query(ctx, testQuery, client.QueryOptions{}); err != nil || len(resp.Answers) == 0 {
		t.Fatalf("query on reopened index: resp=%+v err=%v", resp, err)
	}
}

// TestStartupRecovery: a WAL-enabled index with pending records (a
// simulated crash: durable insert, no close) must be replayed before
// samad serves — with -data the daemon recovers and the crashed insert
// answers; without it the daemon refuses to start.
func TestStartupRecovery(t *testing.T) {
	data, index := writeDataset(t)
	walDir := filepath.Join(filepath.Dir(index), "wal")
	logger := log.New(new(bytes.Buffer), "", 0)
	d, err := startDaemon([]string{"-index", index, "-data", data,
		"-addr", "127.0.0.1:0", "-wal", walDir, "-wal-checkpoint", "-1"}, logger)
	if err != nil {
		t.Fatalf("first start: %v", err)
	}
	if err := d.shutdown(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// The crash: open through the library, recover, insert durably,
	// abandon the handle without Close.
	db, err := sama.Open(index)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sama.LoadGraphFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Recover(g); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert([]sama.Triple{{
		S: sama.NewIRI("dave"), P: sama.NewIRI("worksAt"), O: sama.NewIRI("acme"),
	}}); err != nil {
		t.Fatal(err)
	}

	if _, err := startDaemon([]string{"-index", index, "-addr", "127.0.0.1:0"}, logger); err == nil {
		t.Fatal("daemon served an unrecovered index without -data")
	} else if !strings.Contains(err.Error(), "pending") {
		t.Fatalf("unhelpful refusal: %v", err)
	}

	var logs bytes.Buffer
	d2, err := startDaemon([]string{"-index", index, "-data", data, "-addr", "127.0.0.1:0"},
		log.New(&logs, "", 0))
	if err != nil {
		t.Fatalf("start with recovery: %v", err)
	}
	defer d2.shutdown()
	if !strings.Contains(logs.String(), "wal recovery: replayed 1 records") {
		t.Errorf("logs missing recovery line:\n%s", logs.String())
	}
	c := client.New("http://" + d2.srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c.Query(ctx, testQuery, client.QueryOptions{K: 10})
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	var found bool
	for _, a := range resp.Answers {
		if strings.Contains(a.Bindings["who"], "dave") {
			found = true
		}
	}
	if !found {
		t.Errorf("crashed insert missing from answers: %+v", resp.Answers)
	}
}

func TestStartDaemonFlagErrors(t *testing.T) {
	logger := log.New(new(bytes.Buffer), "", 0)
	if _, err := startDaemon(nil, logger); err == nil {
		t.Error("missing -index accepted")
	}
	if _, err := startDaemon([]string{"-index", "/nonexistent/base"}, logger); err == nil {
		t.Error("unreadable index accepted")
	}
}

// TestSignalDrain drives the daemon through realMain: wait for the
// serving line, run one query, send SIGTERM, and expect a clean drain.
func TestSignalDrain(t *testing.T) {
	// Register our own handler first so a SIGTERM racing realMain's
	// signal.Notify cannot kill the test process.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	data, index := writeDataset(t)
	var mu sync.Mutex
	var logs bytes.Buffer
	logger := log.New(lockedWriter{&mu, &logs}, "samad: ", 0)

	done := make(chan int, 1)
	go func() {
		done <- realMain([]string{"-index", index, "-data", data, "-addr", "127.0.0.1:0",
			"-drain-timeout", "5s"}, logger)
	}()

	addrRe := regexp.MustCompile(`serving on http://([^/]+)/`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("server never came up; logs:\n%s", logs.String())
		}
		mu.Lock()
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			addr = m[1]
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := client.New("http://" + addr)
	if _, err := c.Query(ctx, testQuery, client.QueryOptions{}); err != nil {
		t.Fatalf("query before signal: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			mu.Lock()
			t.Fatalf("realMain = %d; logs:\n%s", code, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("realMain did not exit after SIGTERM")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Errorf("logs missing clean-drain line:\n%s", logs.String())
	}
}

// lockedWriter serialises the daemon's log writes against the test's
// reads.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
