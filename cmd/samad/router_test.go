package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sama/client"
	"sama/internal/datasets"
	"sama/internal/shard"
	"sama/internal/workload"
)

// startShardFleet builds a 3-shard layout over a seeded LUBM graph and
// starts one samad per shard directory, returning the running daemons
// and their base URLs.
func startShardFleet(t *testing.T) ([]*daemon, []string) {
	t.Helper()
	base := filepath.Join(t.TempDir(), "lubm")
	g := datasets.LUBM{}.Generate(600, 11)
	s, err := shard.Build(base, g, shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var (
		ds   []*daemon
		urls []string
	)
	for k := 0; k < 3; k++ {
		shardBase := filepath.Join(shard.Dir(base), fmt.Sprintf("s%03d", k))
		logger := log.New(new(bytes.Buffer), "", 0)
		d, err := startDaemon([]string{"-index", shardBase, "-addr", "127.0.0.1:0"}, logger)
		if err != nil {
			t.Fatalf("shard %d daemon: %v", k, err)
		}
		t.Cleanup(func() { d.shutdown() })
		ds = append(ds, d)
		urls = append(urls, d.srv.Addr())
	}
	return ds, urls
}

// TestRouterE2E is the ISSUE's multi-node acceptance test: three
// in-process shard servers behind `samad -route` serve the Fig. 7
// query mix, and killing a shard degrades responses to partial —
// with the loss named in the explain plan — instead of failing them.
func TestRouterE2E(t *testing.T) {
	shards, urls := startShardFleet(t)

	var logs bytes.Buffer
	router, err := startDaemon([]string{
		"-route", strings.Join(urls, ","),
		"-addr", "127.0.0.1:0",
		"-shard-timeout", "10s",
	}, log.New(&logs, "", 0))
	if err != nil {
		t.Fatalf("router daemon: %v", err)
	}
	defer router.shutdown()
	if !strings.Contains(logs.String(), "routing on") || !strings.Contains(logs.String(), "3 shards") {
		t.Errorf("router start log:\n%s", logs.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := client.New("http://" + router.srv.Addr())
	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("router Readyz: %v", err)
	}

	// The full Fig. 7 mix through the healthy fleet.
	answered := 0
	for _, q := range workload.LUBMQueries() {
		resp, err := c.Query(ctx, q.SPARQL, client.QueryOptions{K: 10, Timeout: 20 * time.Second})
		if err != nil {
			t.Fatalf("%s through router: %v", q.ID, err)
		}
		if resp.Partial {
			t.Errorf("%s: partial against a healthy fleet (%s)", q.ID, resp.StopReason)
		}
		for i := 1; i < len(resp.Answers); i++ {
			if resp.Answers[i].Score < resp.Answers[i-1].Score {
				t.Errorf("%s: merged answers out of order at %d", q.ID, i)
			}
		}
		answered += len(resp.Answers)
	}
	if answered == 0 {
		t.Fatal("the whole query mix returned no answers")
	}

	// Kill shard 1: queries must degrade, not fail.
	shards[1].srv.Close()
	resp, err := c.Query(ctx, workload.LUBMQueries()[0].SPARQL,
		client.QueryOptions{K: 10, Timeout: 20 * time.Second, Explain: true})
	if err != nil {
		t.Fatalf("query with a dead shard failed outright: %v", err)
	}
	if !resp.Partial {
		t.Fatal("dead shard did not mark the response partial")
	}
	if resp.StopReason != "degraded: 2/3 shards answered" {
		t.Fatalf("StopReason = %q", resp.StopReason)
	}
	if resp.Explain == nil || resp.Explain.Source != "router" {
		t.Fatalf("explain plan = %+v", resp.Explain)
	}
	scatter := resp.Explain.Phases[0]
	if scatter.Name != "scatter" || scatter.Attrs["failed"] != 1 {
		t.Fatalf("scatter node = %+v", scatter)
	}
	var deadNamed, liveNested bool
	for _, child := range scatter.Children {
		if child.Name == "shard[1]" && child.Attrs["failed"] == 1 {
			deadNamed = true
		}
		if child.Name == "shard[0]" && len(child.Children) > 0 {
			liveNested = true
		}
	}
	if !deadNamed {
		t.Errorf("dead shard not named in the plan: %+v", scatter.Children)
	}
	if !liveNested {
		t.Errorf("live shard's engine phases not nested in the plan: %+v", scatter.Children)
	}

	// Kill the rest: only now may the router fail, and it does so with
	// an upstream (502), not internal, error.
	shards[0].srv.Close()
	shards[2].srv.Close()
	_, err = c.Query(ctx, workload.LUBMQueries()[0].SPARQL, client.QueryOptions{K: 5})
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != 502 {
		t.Fatalf("all shards dead: err = %v, want HTTP 502", err)
	}
}
