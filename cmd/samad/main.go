// Command samad is the network query daemon: it serves a Sama index
// over HTTP with admission control and graceful drain.
//
//	samad -index /var/data/lubm [-addr :8094]
//	samad -index /tmp/demo -data graph.nt        # build the index first if absent
//
// Endpoints:
//
//	POST /query?k=10&timeout=2s   SPARQL text in, JSON ranked answers out
//	GET  /healthz                 process liveness
//	GET  /readyz                  readiness (503 while draining)
//	GET  /metrics                 Prometheus metrics
//	GET  /debug/                  lastqueries, expvar, pprof
//
// Concurrent execution is bounded by -max-inflight with a bounded FIFO
// wait queue behind it (-max-queue, -queue-timeout); requests beyond
// both receive 503 with a Retry-After hint. Per-request deadlines
// (?timeout=, capped by -max-timeout) thread into the engine, so a
// request that exceeds its budget gets its best-so-far answers with the
// partial flag set. -cache-answers and -cache-align-mb enable the
// answer cache and alignment memo (invalidated by index writes);
// -coalesce collapses identical in-flight queries into one execution.
// -parallelism sizes the engine's alignment worker pool (default
// GOMAXPROCS); it changes scheduling only, never the ranked answers.
// -wal enables the durable write path when the index is built (an
// existing WAL-enabled index reattaches its log automatically); after a
// crash, samad replays the pending records at startup when -data is
// given, and refuses to serve stale answers when it is not.
// SIGINT/SIGTERM starts a graceful drain: the server
// stops admitting, finishes in-flight queries up to -drain-timeout,
// then cancels the stragglers (their clients still receive partial
// results). A second signal forces an immediate stop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sama"
	"sama/internal/obs"
	"sama/internal/server"
)

func main() {
	logger := log.New(os.Stderr, "samad: ", log.LstdFlags)
	os.Exit(realMain(os.Args[1:], logger))
}

// realMain runs the daemon until a termination signal arrives. It is
// the testable core of main: the logger carries the bound address and
// every lifecycle event.
func realMain(args []string, logger *log.Logger) int {
	d, err := startDaemon(args, logger)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 2
		}
		logger.Print(err)
		return 1
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	s := <-sig
	logger.Printf("received %v: draining (deadline %v)", s, d.drainTimeout)
	go func() {
		s := <-sig
		logger.Printf("received %v again: hard stop", s)
		d.srv.Close()
	}()
	if err := d.shutdown(); err != nil {
		logger.Printf("shutdown: %v", err)
		return 1
	}
	logger.Print("drained cleanly")
	return 0
}

// daemon is a running samad instance: the database and the query server
// over it.
type daemon struct {
	db           *sama.DB
	srv          *sama.QueryServer
	drainTimeout time.Duration
	logger       *log.Logger
}

// startDaemon parses flags, opens (or builds) the index and starts the
// server.
func startDaemon(args []string, logger *log.Logger) (*daemon, error) {
	fs := flag.NewFlagSet("samad", flag.ContinueOnError)
	fs.SetOutput(logger.Writer())
	index := fs.String("index", "", "index base path (required)")
	data := fs.String("data", "", "RDF file (N-Triples/Turtle): build the index at -index first when it does not exist")
	addr := fs.String("addr", ":8094", "listen address (port 0 picks a free port)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent query execution limit (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", -1, "wait-queue bound behind the execution slots (-1 = 2×max-inflight, 0 = shed immediately when saturated)")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "how long a request may wait for an execution slot before it is shed")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "cap on the per-request ?timeout parameter")
	defaultTimeout := fs.Duration("default-timeout", 10*time.Second, "query deadline when the request names none")
	defaultK := fs.Int("k", 10, "default answer count when ?k is absent")
	maxK := fs.Int("max-k", 1000, "cap on the per-request ?k parameter")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight queries before cancelling them")
	poolPages := fs.Int("pool-pages", 0, "buffer pool capacity in 8 KiB pages (0 = library default)")
	slow := fs.Duration("slow-query", 0, "log queries slower than this threshold (0 = off)")
	queryLog := fs.Int("query-log", 32, "recent query traces kept for /debug/lastqueries")
	eventLog := fs.Int("event-log", 256, "structured events kept for /debug/events")
	eventSample := fs.Int("event-sample", 1, "keep 1-in-N sub-Warn events per subsystem (Warn+ always lands; 1 = keep all)")
	cacheAnswers := fs.Int("cache-answers", 0, "answer cache capacity in entries; any index write invalidates it (0 = off)")
	cacheAlignMB := fs.Int("cache-align-mb", 0, "alignment memo budget in MiB, reused across queries sharing path shapes (0 = off)")
	coalesce := fs.Bool("coalesce", false, "collapse identical in-flight /query requests into one execution")
	parallelism := fs.Int("parallelism", 0, "alignment worker pool size per query; answers are identical at every setting (0 = GOMAXPROCS)")
	walDir := fs.String("wal", "", "enable the write-ahead log in this directory when building; an existing index reattaches its own WAL automatically")
	walCheckpoint := fs.Int64("wal-checkpoint", 0, "WAL bytes that trigger an automatic checkpoint (0 = library default, -1 = manual only)")
	route := fs.String("route", "", "comma-separated shard server URLs: run as a scatter-gather router over them instead of serving a local index")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Second, "router mode: per-shard request deadline; a shard missing it degrades the answer set instead of failing the query")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *route != "" {
		if *index != "" {
			return nil, errors.New("-route and -index are mutually exclusive: a router holds no local index")
		}
		sopts := sama.ServerOptions{
			MaxInflight:    *maxInflight,
			QueueTimeout:   *queueTimeout,
			MaxTimeout:     *maxTimeout,
			DefaultTimeout: *defaultTimeout,
			DefaultK:       *defaultK,
			MaxK:           *maxK,
		}
		if *maxQueue >= 0 {
			sopts.MaxQueue = *maxQueue
			sopts.MaxQueueSet = true
		}
		return startRouter(*route, *addr, *shardTimeout, sopts, *drainTimeout, logger)
	}
	if *index == "" {
		fs.Usage()
		return nil, errors.New("-index is required")
	}

	opts := []sama.Option{
		sama.WithThesaurus(sama.BenchmarkThesaurus()),
		sama.WithQueryLogSize(*queryLog),
		sama.WithEventLogSize(*eventLog),
		sama.WithEventSampling(*eventSample),
	}
	if *poolPages > 0 {
		opts = append(opts, sama.WithPoolPages(*poolPages))
	}
	if *cacheAnswers > 0 {
		opts = append(opts, sama.WithAnswerCache(*cacheAnswers))
	}
	if *cacheAlignMB > 0 {
		opts = append(opts, sama.WithAlignmentCache(*cacheAlignMB))
	}
	if *parallelism > 0 {
		opts = append(opts, sama.WithParallelism(*parallelism))
	}
	if *slow > 0 {
		// The structured record (trace ID, per-phase context) lands in the
		// event log for /debug/events; the stderr line is the operator's
		// pointer into it.
		opts = append(opts, sama.WithSlowQueryLog(*slow, func(tr *sama.Trace) {
			logger.Printf("slow query %s (trace %s): %v (partial=%v) — details at /debug/events and /debug/lastqueries", tr.Query, tr.ID, tr.Total, tr.Partial)
		}))
	}
	if *walDir != "" {
		opts = append(opts, sama.WithWAL(*walDir))
	}
	if *walCheckpoint != 0 {
		opts = append(opts, sama.WithWALCheckpoint(*walCheckpoint))
	}
	db, err := openOrBuild(*index, *data, opts, logger)
	if err != nil {
		return nil, err
	}
	if err := recoverIfNeeded(db, *data, logger); err != nil {
		db.Close()
		return nil, err
	}

	sopts := sama.ServerOptions{
		MaxInflight:    *maxInflight,
		QueueTimeout:   *queueTimeout,
		MaxTimeout:     *maxTimeout,
		DefaultTimeout: *defaultTimeout,
		DefaultK:       *defaultK,
		MaxK:           *maxK,
		Coalesce:       *coalesce,
	}
	if *maxQueue >= 0 {
		sopts.MaxQueue = *maxQueue
		sopts.MaxQueueSet = true
	}
	srv, err := db.Serve(*addr, sopts)
	if err != nil {
		db.Close()
		return nil, err
	}
	logger.Printf("serving on http://%s/ (index %s, max-inflight %d, max-queue %d)",
		srv.Addr(), *index, sopts.MaxInflight, sopts.MaxQueue)
	return &daemon{db: db, srv: srv, drainTimeout: *drainTimeout, logger: logger}, nil
}

// startRouter runs samad in multi-node router mode: no local index,
// every query fans out to the shard servers and the ranked answers
// merge (DESIGN.md §12). A dead or slow shard degrades responses to
// partial instead of failing them; /metrics and /debug/events report
// the router's own admission and shed counters.
func startRouter(route, addr string, shardTimeout time.Duration, sopts sama.ServerOptions, drainTimeout time.Duration, logger *log.Logger) (*daemon, error) {
	var urls []string
	for _, u := range strings.Split(route, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, errors.New("-route names no shard servers")
	}
	rt := server.NewRouter(urls, server.RouterOptions{ShardTimeout: shardTimeout})
	reg := obs.NewRegistry()
	events := obs.NewEventLog(256)
	h := server.New(server.Backend{QueryWire: rt.Query, Metrics: reg, Events: events}, sopts)
	srv, err := h.Serve(addr)
	if err != nil {
		return nil, err
	}
	logger.Printf("routing on http://%s/ to %d shards: %s (shard-timeout %v)",
		srv.Addr(), len(urls), strings.Join(urls, ", "), shardTimeout)
	return &daemon{srv: srv, drainTimeout: drainTimeout, logger: logger}, nil
}

// openOrBuild opens the index, building it from -data first when the
// index files are missing.
func openOrBuild(index, data string, opts []sama.Option, logger *log.Logger) (*sama.DB, error) {
	if _, err := os.Stat(index + ".meta"); err != nil && data != "" {
		logger.Printf("index %s not found: building from %s", index, data)
		g, err := sama.LoadGraphFile(data)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		db, err := sama.Create(index, g, opts...)
		if err != nil {
			return nil, err
		}
		st := db.Stats()
		logger.Printf("indexed %d triples into %d paths in %v",
			st.Triples, st.Paths, time.Since(start).Round(time.Millisecond))
		return db, nil
	}
	db, err := sama.Open(index, opts...)
	if err != nil {
		return nil, fmt.Errorf("opening index %s: %w (pass -data to build it)", index, err)
	}
	return db, nil
}

// recoverIfNeeded replays a WAL-enabled index's pending records before
// the daemon starts serving: answers from an unrecovered index would
// miss inserts that were acknowledged before the crash. Replay needs
// the data graph, so pending records without -data refuse to start.
func recoverIfNeeded(db *sama.DB, data string, logger *log.Logger) error {
	n := db.NeedsRecovery()
	if n < 0 {
		return nil
	}
	if data == "" {
		if n > 0 {
			return fmt.Errorf("%d write-ahead log records are pending from a crash; pass -data so samad can replay them", n)
		}
		// Nothing pending: serving reads is safe without the graph.
		return nil
	}
	g, err := sama.LoadGraphFile(data)
	if err != nil {
		return err
	}
	rs, err := db.Recover(g)
	if err != nil {
		return fmt.Errorf("wal recovery: %w", err)
	}
	if rs.Records > 0 || rs.TornTailRepaired {
		logger.Printf("wal recovery: replayed %d records (%d triples) in %v, sidecar %d triples, torn tail repaired: %v",
			rs.Records, rs.Triples, rs.Replay.Round(time.Microsecond), rs.SidecarTriples, rs.TornTailRepaired)
	}
	return nil
}

// shutdown drains the server within the drain deadline, then closes the
// database (routers have none).
func (d *daemon) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), d.drainTimeout)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	if d.db != nil {
		if cerr := d.db.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
