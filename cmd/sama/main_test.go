package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testNT = `<CarlaBunes> <sponsor> <A0056> .
<A0056> <aTo> <B1432> .
<B1432> <subject> "Health Care" .
<PierceDickes> <sponsor> <B1432> .
<PierceDickes> <gender> "Male" .
`

func setupIndexed(t *testing.T) (dataFile, indexBase string) {
	t.Helper()
	dir := t.TempDir()
	dataFile = filepath.Join(dir, "data.nt")
	if err := os.WriteFile(dataFile, []byte(testNT), 0o644); err != nil {
		t.Fatal(err)
	}
	indexBase = filepath.Join(dir, "idx")
	if err := runIndex([]string{"-data", dataFile, "-index", indexBase}); err != nil {
		t.Fatal(err)
	}
	return dataFile, indexBase
}

func TestRunIndexAndStats(t *testing.T) {
	_, base := setupIndexed(t)
	if err := runStats([]string{"-index", base}); err != nil {
		t.Errorf("stats: %v", err)
	}
}

func TestRunQueryInline(t *testing.T) {
	_, base := setupIndexed(t)
	err := runQuery([]string{"-index", base,
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`, "-k", "3"})
	if err != nil {
		t.Errorf("query: %v", err)
	}
	// Cold-cache flag path.
	err = runQuery([]string{"-index", base, "-cold",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Errorf("cold query: %v", err)
	}
}

func TestRunQueryFromFile(t *testing.T) {
	dir := t.TempDir()
	qf := filepath.Join(dir, "q.rq")
	if err := os.WriteFile(qf, []byte(`SELECT * WHERE { ?s <sponsor> ?o }`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, base := setupIndexed(t)
	if err := runQuery([]string{"-index", base, "-sparql", qf}); err != nil {
		t.Errorf("query from file: %v", err)
	}
}

func TestRunQueryTimeout(t *testing.T) {
	_, base := setupIndexed(t)
	// A generous deadline: the query completes, no partial marker.
	err := runQuery([]string{"-index", base, "-timeout", "30s",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Errorf("query with timeout: %v", err)
	}
	// An already-expired deadline still succeeds, printing the
	// best-so-far (possibly empty) prefix with the (partial) marker.
	err = runQuery([]string{"-index", base, "-timeout", "1ns",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Errorf("query with expired timeout: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := runIndex([]string{}); err == nil {
		t.Error("index without flags accepted")
	}
	if err := runIndex([]string{"-data", "/nonexistent.nt", "-index", t.TempDir() + "/x"}); err == nil {
		t.Error("missing data file accepted")
	}
	if err := runQuery([]string{}); err == nil {
		t.Error("query without index accepted")
	}
	if err := runQuery([]string{"-index", t.TempDir() + "/absent", "-q", "SELECT * WHERE { ?s <p> <o> }"}); err == nil {
		t.Error("absent index accepted")
	}
	_, base := setupIndexed(t)
	if err := runQuery([]string{"-index", base}); err == nil {
		t.Error("query without -q/-sparql accepted")
	}
	if err := runQuery([]string{"-index", base, "-q", "not sparql"}); err == nil {
		t.Error("bad SPARQL accepted")
	}
	if err := runStats([]string{}); err == nil {
		t.Error("stats without index accepted")
	}
}
