package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sama"
)

// captureOut redirects the package-level output writer to a buffer for
// the duration of the test.
func captureOut(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prev := out
	out = &buf
	t.Cleanup(func() { out = prev })
	return &buf
}

const testNT = `<CarlaBunes> <sponsor> <A0056> .
<A0056> <aTo> <B1432> .
<B1432> <subject> "Health Care" .
<PierceDickes> <sponsor> <B1432> .
<PierceDickes> <gender> "Male" .
`

func setupIndexed(t *testing.T) (dataFile, indexBase string) {
	t.Helper()
	dir := t.TempDir()
	dataFile = filepath.Join(dir, "data.nt")
	if err := os.WriteFile(dataFile, []byte(testNT), 0o644); err != nil {
		t.Fatal(err)
	}
	indexBase = filepath.Join(dir, "idx")
	if err := runIndex([]string{"-data", dataFile, "-index", indexBase}); err != nil {
		t.Fatal(err)
	}
	return dataFile, indexBase
}

func TestRunIndexAndStats(t *testing.T) {
	_, base := setupIndexed(t)
	if err := runStats([]string{"-index", base}); err != nil {
		t.Errorf("stats: %v", err)
	}
}

func TestRunQueryInline(t *testing.T) {
	_, base := setupIndexed(t)
	err := runQuery([]string{"-index", base,
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`, "-k", "3"})
	if err != nil {
		t.Errorf("query: %v", err)
	}
	// Cold-cache flag path.
	err = runQuery([]string{"-index", base, "-cold",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Errorf("cold query: %v", err)
	}
}

func TestRunQueryFromFile(t *testing.T) {
	dir := t.TempDir()
	qf := filepath.Join(dir, "q.rq")
	if err := os.WriteFile(qf, []byte(`SELECT * WHERE { ?s <sponsor> ?o }`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, base := setupIndexed(t)
	if err := runQuery([]string{"-index", base, "-sparql", qf}); err != nil {
		t.Errorf("query from file: %v", err)
	}
}

func TestRunQueryTimeout(t *testing.T) {
	_, base := setupIndexed(t)
	// A generous deadline: the query completes, no partial marker.
	err := runQuery([]string{"-index", base, "-timeout", "30s",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Errorf("query with timeout: %v", err)
	}
	// An already-expired deadline still succeeds, printing the
	// best-so-far (possibly empty) prefix with the (partial) marker.
	err = runQuery([]string{"-index", base, "-timeout", "1ns",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Errorf("query with expired timeout: %v", err)
	}
}

func TestRunQueryStatsTable(t *testing.T) {
	_, base := setupIndexed(t)
	buf := captureOut(t)
	err := runQuery([]string{"-index", base, "-stats",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Fatalf("query -stats: %v", err)
	}
	got := buf.String()
	if !strings.Contains(got, "phase breakdown:") {
		t.Fatalf("no phase breakdown header in output:\n%s", got)
	}
	table := got[strings.Index(got, "phase breakdown:"):]
	for _, phase := range []string{"decompose", "cluster", "search", "assemble", "total"} {
		if !strings.Contains(table, phase) {
			t.Errorf("trace table missing %q row:\n%s", phase, table)
		}
	}
	// Each phase row carries a duration; spot-check the total row's
	// shape: "total  <dur>  answers=N".
	if !regexp.MustCompile(`(?m)^total\s+\S+\s+answers=\d+`).MatchString(table) {
		t.Errorf("total row malformed:\n%s", table)
	}
	if !strings.Contains(table, "io") || !strings.Contains(table, "reads=") {
		t.Errorf("io attribution row missing:\n%s", table)
	}
}

func TestRunQueryDebugAddr(t *testing.T) {
	_, base := setupIndexed(t)
	buf := captureOut(t)
	err := runQuery([]string{"-index", base, "-debug-addr", "127.0.0.1:0",
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`})
	if err != nil {
		t.Fatalf("query -debug-addr: %v", err)
	}
	var addr string
	if _, err := fmt.Sscanf(buf.String(), "debug server on http://%s", &addr); err != nil {
		t.Fatalf("no debug server line in output: %v\n%s", err, buf.String())
	}
	addr = strings.TrimSuffix(addr, "/")
	// The server is closed when runQuery returns; a later scrape must
	// fail — proves the CLI does not leak the listener.
	if resp, err := http.Get("http://" + addr + "/metrics"); err == nil {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Errorf("debug server still listening after runQuery:\n%.200s", b)
	}
}

// TestRunIndexWithWALAndRecover drives the CLI's durability surface end
// to end: build with -wal, insert durably through the library, abandon
// the handle without closing (the crash), then confirm query refuses
// the unrecovered index, "sama recover" replays the log, and the
// recovered index answers with the crashed insert visible.
func TestRunIndexWithWALAndRecover(t *testing.T) {
	dir := t.TempDir()
	dataFile := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(dataFile, []byte(testNT), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "idx")
	walDir := filepath.Join(dir, "wal")
	if err := runIndex([]string{"-data", dataFile, "-index", base, "-wal", walDir, "-wal-checkpoint", "-1"}); err != nil {
		t.Fatal(err)
	}

	// Crash: insert through the library and never Close — the batch is
	// in the fsynced log but not in the checkpointed pages.
	db, err := sama.Open(base, sama.WithThesaurus(sama.BenchmarkThesaurus()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := sama.LoadGraphFile(dataFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Recover(g); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert([]sama.Triple{{
		S: sama.NewIRI("NewSen"), P: sama.NewIRI("sponsor"), O: sama.NewIRI("A0056"),
	}}); err != nil {
		t.Fatal(err)
	}
	// No Close, no Flush: the process "dies" here.

	if err := runQuery([]string{"-index", base, "-q", `SELECT ?x WHERE { ?x <sponsor> <A0056> }`}); err == nil {
		t.Fatal("query served an unrecovered index")
	} else if !strings.Contains(err.Error(), "recover") {
		t.Fatalf("unhelpful refusal: %v", err)
	}

	buf := captureOut(t)
	if err := runRecover([]string{"-index", base, "-data", dataFile}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !strings.Contains(buf.String(), "replayed 1 records") {
		t.Fatalf("recover output missing replay line:\n%s", buf.String())
	}

	buf.Reset()
	if err := runQuery([]string{"-index", base, "-q", `SELECT ?x WHERE { ?x <sponsor> <A0056> }`}); err != nil {
		t.Fatalf("query after recover: %v", err)
	}
	if !strings.Contains(buf.String(), "NewSen") {
		t.Fatalf("recovered insert missing from answers:\n%s", buf.String())
	}
}

func TestCLIErrors(t *testing.T) {
	if err := runIndex([]string{}); err == nil {
		t.Error("index without flags accepted")
	}
	if err := runIndex([]string{"-data", "/nonexistent.nt", "-index", t.TempDir() + "/x"}); err == nil {
		t.Error("missing data file accepted")
	}
	if err := runQuery([]string{}); err == nil {
		t.Error("query without index accepted")
	}
	if err := runQuery([]string{"-index", t.TempDir() + "/absent", "-q", "SELECT * WHERE { ?s <p> <o> }"}); err == nil {
		t.Error("absent index accepted")
	}
	_, base := setupIndexed(t)
	if err := runQuery([]string{"-index", base}); err == nil {
		t.Error("query without -q/-sparql accepted")
	}
	if err := runQuery([]string{"-index", base, "-q", "not sparql"}); err == nil {
		t.Error("bad SPARQL accepted")
	}
	if err := runStats([]string{}); err == nil {
		t.Error("stats without index accepted")
	}
}

// TestRunIndexSharded builds a sharded layout with -shards and checks
// that query and stats open it transparently.
func TestRunIndexSharded(t *testing.T) {
	buf := captureOut(t)
	dir := t.TempDir()
	dataFile := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(dataFile, []byte(testNT), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "idx")
	if err := runIndex([]string{"-data", dataFile, "-index", base, "-shards", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sharded layout: 3 shards") {
		t.Errorf("index output missing shard count:\n%s", buf.String())
	}
	buf.Reset()
	if err := runQuery([]string{"-index", base,
		"-q", `SELECT ?x WHERE { ?x <gender> "Male" }`}); err != nil {
		t.Fatalf("query over sharded layout: %v", err)
	}
	if !strings.Contains(buf.String(), "PierceDickes") {
		t.Errorf("sharded query output missing answer:\n%s", buf.String())
	}
	if err := runStats([]string{"-index", base}); err != nil {
		t.Errorf("stats over sharded layout: %v", err)
	}
}
