// Command sama is the command-line front end of the approximate RDF
// query engine:
//
//	sama index -data graph.nt -index /path/to/index
//	sama query -index /path/to/index -sparql query.rq [-k 10]
//	sama query -index /path/to/index -q 'SELECT ?x WHERE { ... }'
//	sama stats -index /path/to/index
//
// The index subcommand builds the disk-resident path index from an
// N-Triples file; query answers a SPARQL basic graph pattern with
// ranked approximate answers; stats prints the Table 1-style index
// measurements.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sama"
)

// out is where subcommands print their results; tests swap it for a
// buffer to assert on the output.
var out io.Writer = os.Stdout

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "index":
		err = runIndex(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "recover":
		err = runRecover(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "sama: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sama:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  sama index -data <graph.nt> -index <base>     build the path index
             [-wal <dir>] [-wal-checkpoint <bytes>] [-shards <n>]
  sama query -index <base> (-q <sparql> | -sparql <file>) [-k 10] [-cold] [-timeout 0]
             [-stats] [-explain] [-explain-json] [-debug-addr host:port] [-serve]
  sama stats -index <base>                      print index statistics
  sama recover -index <base> -data <graph.nt>   replay the write-ahead log

-wal enables the durable write path: inserts are acknowledged only
after the batch is fsynced to a write-ahead log in <dir>, and a crash
replays the log on the next open. After a crash, run "sama recover"
with the original data file before querying or inserting.

-serve keeps the -debug-addr server (and the process) alive after the
answers print, until SIGINT/SIGTERM; without it the debug server dies
with the query. For a long-lived query endpoint use samad instead.
`)
}

func runIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	data := fs.String("data", "", "N-Triples input file (required)")
	base := fs.String("index", "", "index base path (required)")
	maxLen := fs.Int("max-path-length", 12, "maximum nodes per indexed path")
	maxPerRoot := fs.Int("max-paths-per-root", 4096, "path budget per source")
	walDir := fs.String("wal", "", "enable the write-ahead log in this directory (durable inserts)")
	walCheckpoint := fs.Int64("wal-checkpoint", 0, "WAL bytes that trigger an automatic checkpoint (0 = library default, -1 = manual only)")
	shards := fs.Int("shards", 0, "partition the index into N shards (sharded on-disk layout; queries return identical answers)")
	fs.Parse(args)
	if *data == "" || *base == "" {
		return fmt.Errorf("index: -data and -index are required")
	}
	start := time.Now()
	g, err := sama.LoadGraphFile(*data) // .ttl/.turtle or N-Triples
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %d triples (%d nodes) in %v\n",
		g.EdgeCount(), g.NodeCount(), time.Since(start).Round(time.Millisecond))
	oo := []sama.Option{
		sama.WithPathConfig(sama.PathConfig{MaxLength: *maxLen, MaxPerRoot: *maxPerRoot}),
		sama.WithThesaurus(sama.BenchmarkThesaurus()),
	}
	if *walDir != "" {
		oo = append(oo, sama.WithWAL(*walDir))
		if *walCheckpoint != 0 {
			oo = append(oo, sama.WithWALCheckpoint(*walCheckpoint))
		}
	}
	if *shards > 1 {
		oo = append(oo, sama.WithShards(*shards))
	}
	db, err := sama.Create(*base, g, oo...)
	if err != nil {
		return err
	}
	defer db.Close()
	if n := db.Shards(); n > 0 {
		fmt.Fprintf(out, "sharded layout: %d shards\n", n)
	}
	printStats(db.Stats())
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	base := fs.String("index", "", "index base path (required)")
	qtext := fs.String("q", "", "SPARQL query text")
	qfile := fs.String("sparql", "", "file containing the SPARQL query")
	k := fs.Int("k", 10, "number of answers")
	cold := fs.Bool("cold", false, "drop the cache before running (cold-cache timing)")
	timeout := fs.Duration("timeout", 0, "query deadline; on expiry the best answers found so far are printed (0 = none)")
	stats := fs.Bool("stats", false, "print the per-phase trace table after the answers")
	explain := fs.Bool("explain", false, "print the deterministic explain plan after the answers")
	explainJSON := fs.Bool("explain-json", false, "like -explain, but print the plan as JSON (byte-identical to the server's ?explain=1 document)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/lastqueries on this address while the query runs")
	serve := fs.Bool("serve", false, "with -debug-addr: keep the debug server alive after the answers print, until SIGINT/SIGTERM (for a query endpoint, see samad)")
	parallelism := fs.Int("parallelism", 0, "alignment worker pool size; answers are identical at every setting (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *base == "" {
		return fmt.Errorf("query: -index is required")
	}
	src := *qtext
	if src == "" {
		if *qfile == "" {
			return fmt.Errorf("query: provide -q or -sparql")
		}
		b, err := os.ReadFile(*qfile)
		if err != nil {
			return err
		}
		src = string(b)
	}
	oo := []sama.Option{sama.WithThesaurus(sama.BenchmarkThesaurus())}
	if *parallelism > 0 {
		oo = append(oo, sama.WithParallelism(*parallelism))
	}
	db, err := sama.Open(*base, oo...)
	if err != nil {
		return err
	}
	defer db.Close()
	if n := db.NeedsRecovery(); n > 0 {
		return fmt.Errorf("query: %d write-ahead log records are pending from a crash; run\n  sama recover -index %s -data <graph file>\nfirst, or answers would miss acknowledged inserts", n, *base)
	}
	if *debugAddr != "" {
		dbg, err := db.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(out, "debug server on http://%s/ (metrics, pprof, lastqueries)\n", dbg.Addr())
	}
	if *cold {
		if err := db.DropCache(); err != nil {
			return err
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := db.QuerySPARQLContext(ctx, src, *k)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	marker := ""
	if res.Partial {
		marker = fmt.Sprintf(" (partial: %s)", res.StopReason)
	}
	fmt.Fprintf(out, "%d answers in %v%s\n\n", len(res.Answers), elapsed.Round(time.Microsecond), marker)
	for i, a := range res.Answers {
		fmt.Fprintf(out, "#%d score %.2f (Λ %.2f + Ψ %.2f)", i+1, a.Score, a.Lambda, a.Psi)
		if a.Exact() {
			fmt.Fprint(out, "  [exact]")
		}
		fmt.Fprintln(out)
		for _, v := range res.Vars {
			if t, ok := a.Subst[v]; ok {
				fmt.Fprintf(out, "  ?%s = %s\n", v, t)
			}
		}
		for _, pr := range a.Pairs {
			fmt.Fprintf(out, "  %s\n", pr.Data)
		}
		fmt.Fprintln(out)
	}
	if *stats && res.Stats.Trace != nil {
		fmt.Fprintln(out, "phase breakdown:")
		res.Stats.Trace.WriteTable(out)
	}
	if *explain || *explainJSON {
		plan := res.Stats.Plan()
		if plan == nil {
			fmt.Fprintln(out, "no explain plan (tracing disabled)")
		} else if *explainJSON {
			b, err := json.MarshalIndent(plan, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\n", b)
		} else {
			plan.WriteText(out)
		}
	}
	if *serve {
		if *debugAddr == "" {
			return fmt.Errorf("query: -serve requires -debug-addr")
		}
		// Without -serve the debug server only lives while the query
		// runs — hold it (and the open DB behind its metrics) until a
		// termination signal.
		fmt.Fprintln(out, "holding debug server open (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		<-sig
	}
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	base := fs.String("index", "", "index base path (required)")
	fs.Parse(args)
	if *base == "" {
		return fmt.Errorf("stats: -index is required")
	}
	db, err := sama.Open(*base)
	if err != nil {
		return err
	}
	defer db.Close()
	printStats(db.Stats())
	return nil
}

// runRecover replays a WAL-enabled index's pending log records after a
// crash: the data graph is rebuilt from the original file plus the
// delta sidecar, the acknowledged-but-unindexed batches are re-applied,
// and a checkpoint makes the result durable.
func runRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	base := fs.String("index", "", "index base path (required)")
	data := fs.String("data", "", "the RDF file the index was built from (required)")
	fs.Parse(args)
	if *base == "" || *data == "" {
		return fmt.Errorf("recover: -index and -data are required")
	}
	db, err := sama.Open(*base, sama.WithThesaurus(sama.BenchmarkThesaurus()))
	if err != nil {
		return err
	}
	defer db.Close()
	if db.NeedsRecovery() < 0 {
		fmt.Fprintln(out, "index has no write-ahead log; nothing to recover")
		return nil
	}
	g, err := sama.LoadGraphFile(*data)
	if err != nil {
		return err
	}
	rs, err := db.Recover(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d records (%d triples) in %v\n",
		rs.Records, rs.Triples, rs.Replay.Round(time.Microsecond))
	fmt.Fprintf(out, "sidecar triples merged: %d\n", rs.SidecarTriples)
	if rs.TornTailRepaired {
		fmt.Fprintln(out, "torn log tail truncated (unacknowledged batch discarded)")
	}
	return nil
}

func printStats(st sama.IndexStats) {
	fmt.Fprintf(out, "triples:     %d\n", st.Triples)
	fmt.Fprintf(out, "|HV|:        %d\n", st.HV)
	fmt.Fprintf(out, "|HE|:        %d (edges + path hyperedges)\n", st.HE)
	fmt.Fprintf(out, "paths:       %d\n", st.Paths)
	fmt.Fprintf(out, "build time:  %v\n", st.BuildTime.Round(time.Millisecond))
	fmt.Fprintf(out, "disk:        %.1f MB\n", float64(st.DiskBytes)/(1<<20))
}
