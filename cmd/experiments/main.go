// Command experiments regenerates every table and figure of the
// paper's evaluation section:
//
//	experiments table1                 HyperGraphDB-style indexing stats
//	experiments fig6  [-triples N]     avg response time, cold & warm cache
//	experiments fig7  [-triples N]     Sama scalability sweeps (a, b, c)
//	experiments fig8  [-triples N]     # of matches per query per system
//	experiments fig9  [-triples N]     precision/recall interpolation
//	experiments rr    [-triples N]     reciprocal rank check
//	experiments all   [-triples N]     everything above
//
// Results print as plain-text tables mirroring each figure's series;
// EXPERIMENTS.md records a reference run against the paper's reported
// shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sama/internal/datasets"
	"sama/internal/experiments"
	"sama/internal/workload"
)

type options struct {
	triples int
	seed    int64
	runs    int
	dir     string
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	opt := options{}
	fs.IntVar(&opt.triples, "triples", 60_000, "LUBM scale for the query experiments")
	fs.Int64Var(&opt.seed, "seed", 1, "dataset generator seed")
	fs.IntVar(&opt.runs, "runs", 10, "timed runs per measurement")
	fs.StringVar(&opt.dir, "dir", "", "scratch directory for index files (default: temp)")
	if cmd == "-h" || cmd == "--help" || cmd == "help" {
		usage()
		return
	}
	fs.Parse(os.Args[2:])

	cleanup := func() {}
	if opt.dir == "" {
		dir, cl, err := experiments.TempDir()
		if err != nil {
			fatal(err)
		}
		opt.dir = dir
		cleanup = cl
	}
	defer cleanup()

	var err error
	switch cmd {
	case "table1":
		err = runTable1(opt)
	case "fig6":
		err = runFig6(opt)
	case "fig7":
		err = runFig7(opt)
	case "fig8":
		err = runFig8(opt)
	case "fig9":
		err = runFig9(opt)
	case "rr":
		err = runRR(opt)
	case "ablation":
		err = runAblation(opt)
	case "xdata":
		err = runCrossDataset(opt)
	case "all":
		for _, f := range []func(options) error{runTable1, runFig6, runFig7, runFig8, runFig9, runRR, runCrossDataset, runAblation} {
			if err = f(opt); err != nil {
				break
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: experiments <table1|fig6|fig7|fig8|fig9|rr|xdata|ablation|all> [flags]
flags:
  -triples N   LUBM scale for the query experiments (default 60000)
  -seed N      generator seed (default 1)
  -runs N      timed runs per measurement (default 10)
  -dir PATH    scratch directory for index files
`)
}

func header(title string) {
	fmt.Printf("\n========== %s ==========\n", title)
}

func runTable1(opt options) error {
	header("Table 1: indexing")
	start := time.Now()
	rows, err := experiments.RunTable1(opt.dir, experiments.DefaultTable1Scales, opt.seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable1(rows))
	fmt.Printf("(total %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func lubmSystems(opt options) ([]experiments.System, *experiments.SamaSystem, error) {
	g := datasets.LUBM{}.Generate(opt.triples, opt.seed)
	fmt.Printf("LUBM: %d triples, %d nodes\n", g.EdgeCount(), g.NodeCount())
	systems, err := experiments.NewAllSystems(opt.dir, g)
	if err != nil {
		return nil, nil, err
	}
	return systems, systems[0].(*experiments.SamaSystem), nil
}

func closeAll(systems []experiments.System) {
	for _, s := range systems {
		s.Close()
	}
}

func runFig6(opt options) error {
	header("Figure 6: average response time on LUBM")
	systems, _, err := lubmSystems(opt)
	if err != nil {
		return err
	}
	defer closeAll(systems)
	res, err := experiments.RunFigure6(systems, workload.LUBMQueries(), opt.runs)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure6(res.Cold, "(a) cold-cache"))
	fmt.Println()
	fmt.Print(experiments.FormatFigure6(res.Warm, "(b) warm-cache"))
	return nil
}

func runFig7(opt options) error {
	header("Figure 7: Sama scalability on LUBM")
	scales := []int{opt.triples / 4, opt.triples / 2, 3 * opt.triples / 4, opt.triples,
		5 * opt.triples / 4, 3 * opt.triples / 2}
	a, err := experiments.RunFigure7a(opt.dir, scales, opt.seed, opt.runs)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure7(a))
	fmt.Println()

	systems, sama, err := lubmSystems(opt)
	if err != nil {
		return err
	}
	defer closeAll(systems)
	b, err := experiments.RunFigure7b(sama, 8, opt.runs)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure7(b))
	fmt.Println()
	c, err := experiments.RunFigure7c(sama, 7, opt.runs)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure7(c))
	return nil
}

func runFig8(opt options) error {
	header("Figure 8: effectiveness on LUBM (# of matches)")
	systems, _, err := lubmSystems(opt)
	if err != nil {
		return err
	}
	defer closeAll(systems)
	cells, err := experiments.RunFigure8(systems, workload.LUBMQueries())
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure8(cells))
	return nil
}

func runFig9(opt options) error {
	header("Figure 9: precision/recall on LUBM")
	systems, sama, err := lubmSystems(opt)
	if err != nil {
		return err
	}
	defer closeAll(systems)
	curves, err := experiments.RunFigure9(systems, sama.Graph(), workload.LUBMQueries(), experiments.Fig9Options{})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure9(curves))
	return nil
}

func runRR(opt options) error {
	header("Reciprocal rank (§6.3)")
	systems, sama, err := lubmSystems(opt)
	if err != nil {
		return err
	}
	defer closeAll(systems)
	rows, err := experiments.RunRR(sama, workload.LUBMQueries(), 20)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRR(rows))
	return nil
}

func runCrossDataset(opt options) error {
	header("Per-dataset trend (§6.3)")
	rows, err := experiments.RunCrossDataset(opt.dir, opt.triples/3, opt.seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatCrossDataset(rows))
	return nil
}

func runAblation(opt options) error {
	header("Ablations (DESIGN.md design choices)")
	g := datasets.LUBM{}.Generate(opt.triples/3, opt.seed)
	fmt.Printf("LUBM: %d triples\n", g.EdgeCount())
	sys, err := experiments.NewSamaSystem(opt.dir, g)
	if err != nil {
		return err
	}
	defer sys.Close()
	var all []experiments.AblationResult
	chi, err := experiments.RunAblationChi(sys, workload.LUBMQueries(), 20)
	if err != nil {
		return err
	}
	all = append(all, chi...)
	alg, err := experiments.RunAblationAligner(sys, workload.LUBMQueries()[:6])
	if err != nil {
		return err
	}
	all = append(all, alg...)
	comp, err := experiments.RunAblationCompression(opt.dir, opt.triples/3, opt.seed)
	if err != nil {
		return err
	}
	all = append(all, comp...)
	thes, err := experiments.RunAblationThesaurus(opt.dir, opt.triples/3, opt.seed)
	if err != nil {
		return err
	}
	all = append(all, thes...)
	incr, err := experiments.RunInsertAblation(opt.dir, opt.triples/3, opt.seed)
	if err != nil {
		return err
	}
	all = append(all, incr...)
	fmt.Print(experiments.FormatAblation(all))
	return nil
}
